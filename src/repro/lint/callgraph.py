"""Whole-tree call graph over the ``repro`` package.

The interprocedural rules need to know, for a call written in one
function, which function in the tree it lands in. This module answers
that in two strictly separated stages so the answer stays cacheable:

1. **Extraction** (:func:`extract_module_facts`) — a purely syntactic,
   per-file pass producing JSON-serialisable :class:`ModuleFacts`: the
   import map, a class registry (bases, methods, attribute types read
   off ``__init__`` assignments and dataclass annotations), and per
   function a list of symbolic :class:`CallFact` records ("calls
   ``self.recorder.append`` at line 210, not awaited"). Facts depend
   only on the file's bytes, so the summary store memoises them by
   content hash and warm runs never re-parse.

2. **Resolution** (:class:`Project`) — a cheap whole-tree pass over the
   collected facts. Names resolve through the import maps, methods bind
   via class scan with base-chain chasing (``super().__init__`` walks
   the MRO approximation), and receiver chains (``conn.recorder.append``)
   resolve through declared/inferred attribute types. Every call lands
   in exactly one category:

   - ``internal`` — a function in the tree (edge in the graph);
   - ``internal-ctor`` — an in-tree class with a synthesised
     ``__init__`` (dataclasses; the class resolved, there is no body
     to follow);
   - ``external`` — stdlib/third-party (``time.sleep``, numpy, a
     method inherited from an external base);
   - ``unseen`` — an intra-package import whose module is not part of
     this run (``--changed`` subsets);
   - ``dynamic`` — an untyped receiver or higher-order value; rules
     stay silent rather than speculate;
   - ``unresolved`` — a symbolic reference that *should* have resolved
     (an attribute on an in-tree class that no class in the chain
     defines). The whole-src self-check asserts this count is zero.

Cycles are expected (mutual recursion, method ↔ helper); the summary
layer consumes :meth:`Project.sccs` — Tarjan strongly-connected
components in bottom-up (callee-first) order — so propagation reaches a
fixpoint without caring about them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator, Union

from repro.lint.arrayflow import ArrayType, ShapeEnv, parse_docstring_contracts
from repro.lint.cfg import FunctionLike, iter_functions
from repro.lint.suppress import LinePragmas, ShapeContract, scan_pragmas

__all__ = [
    "CALLGRAPH_VERSION",
    "CallFact",
    "ClassFacts",
    "FunctionFacts",
    "LockHold",
    "ModuleFacts",
    "Project",
    "Resolution",
    "call_fact_of",
    "extract_module_facts",
]

#: Bump when the facts schema or extraction behaviour changes; persisted
#: facts from an older version are discarded, never misread.
#: 2: per-function array facts (shape/dtype contracts, alias-safe and
#: hotpath markers, inferred return array type).
CALLGRAPH_VERSION = "2"

#: The package the graph is scoped to.
_PACKAGE = "repro"

#: Receiver-chain length beyond which calls are classified dynamic.
_MAX_CHAIN = 4


# ----------------------------------------------------------------- fact model
@dataclass(frozen=True)
class CallFact:
    """One call site, symbolically: a receiver chain plus position.

    ``parts`` spells the callee as written — ``("time", "sleep")``,
    ``("self", "recorder", "append")``, ``("helper",)`` — except for
    ``super().m(...)`` which is recorded as ``("super", "m")``.
    """

    parts: tuple[str, ...]
    line: int
    col: int
    #: The call is directly under an ``await``.
    awaited: bool
    #: The call is a whole expression statement (its value is dropped).
    discarded: bool
    #: The call carries ``*args``/``**kwargs`` (argument mapping unsafe).
    has_star_args: bool
    #: Positional argument count and keyword names (for param mapping).
    n_args: int
    kwarg_names: tuple[str, ...]

    def to_json(self) -> dict[str, Any]:
        return {
            "parts": list(self.parts),
            "line": self.line,
            "col": self.col,
            "awaited": self.awaited,
            "discarded": self.discarded,
            "star": self.has_star_args,
            "n_args": self.n_args,
            "kwargs": list(self.kwarg_names),
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "CallFact":
        return CallFact(
            parts=tuple(data["parts"]),
            line=int(data["line"]),
            col=int(data["col"]),
            awaited=bool(data["awaited"]),
            discarded=bool(data["discarded"]),
            has_star_args=bool(data["star"]),
            n_args=int(data["n_args"]),
            kwarg_names=tuple(data["kwargs"]),
        )


@dataclass(frozen=True)
class LockHold:
    """A sync ``with <lock>`` in an async function whose body awaits."""

    parts: tuple[str, ...]
    line: int
    col: int

    def to_json(self) -> dict[str, Any]:
        return {"parts": list(self.parts), "line": self.line, "col": self.col}

    @staticmethod
    def from_json(data: dict[str, Any]) -> "LockHold":
        return LockHold(tuple(data["parts"]), int(data["line"]), int(data["col"]))


@dataclass(frozen=True)
class FunctionFacts:
    """Everything the interprocedural layer knows about one function."""

    qualname: str
    line: int
    is_async: bool
    #: Immediately enclosing class qualname within the module, or "".
    class_name: str
    #: Parameter names in binding order (``self``/``cls`` included).
    params: tuple[str, ...]
    calls: tuple[CallFact, ...]
    #: Local/parameter type spellings (``{"t": "threading.Thread"}``).
    local_types: dict[str, str]
    #: Parameter names whose value visibly escapes without a call
    #: (returned, yielded, stored into an attribute/container, captured
    #: by a nested function).
    param_escapes_direct: tuple[str, ...]
    #: Parameter names released locally (``p.close()`` etc.).
    param_consumes_direct: tuple[str, ...]
    #: ``(param, call index, position or keyword)`` argument hand-offs.
    param_passes: tuple[tuple[str, int, Union[int, str]], ...]
    #: Names of locals returned by this function (ownership heuristics).
    returned_names: tuple[str, ...]
    #: Indices into ``calls`` whose result is returned directly
    #: (``return helper()`` / ``return Recorder(...)``).
    returned_calls: tuple[int, ...]
    #: Sync ``with``-held locks whose body contains an ``await``.
    lock_holds: tuple[LockHold, ...]
    has_await: bool
    #: Declared array contracts (shape pragma + docstring ``Shape:``
    #: block): parameter name or ``"return"`` → (dims, dtype). Dims are
    #: symbolic spellings scoped to this function.
    array_contracts: dict[str, tuple[tuple[str, ...], str]] = field(
        default_factory=dict
    )
    #: Contract declarations that could not be resolved (a name that is
    #: not a parameter, a pragma/docstring conflict, a malformed
    #: ``Shape:`` entry). The whole-src self-check asserts none exist.
    array_unresolved: tuple[str, ...] = ()
    #: Locally inferred array type of the returned expression, when the
    #: shape domain models it and no ``return`` contract is declared.
    returned_array: "ArrayType | None" = None
    #: The ``alias-safe`` pragma on the def line: the kernel tolerates
    #: an ``out=`` buffer aliasing an input.
    alias_safe: bool = False
    #: The ``hotpath`` pragma on the def line.
    hotpath: bool = False

    def to_json(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "is_async": self.is_async,
            "class_name": self.class_name,
            "params": list(self.params),
            "calls": [c.to_json() for c in self.calls],
            "local_types": dict(self.local_types),
            "escapes": list(self.param_escapes_direct),
            "consumes": list(self.param_consumes_direct),
            "passes": [list(p) for p in self.param_passes],
            "returned": list(self.returned_names),
            "returned_calls": list(self.returned_calls),
            "lock_holds": [h.to_json() for h in self.lock_holds],
            "has_await": self.has_await,
            "array_contracts": {
                name: [list(dims), dtype]
                for name, (dims, dtype) in self.array_contracts.items()
            },
            "array_unresolved": list(self.array_unresolved),
            "returned_array": (
                None
                if self.returned_array is None
                else [
                    None
                    if self.returned_array[0] is None
                    else list(self.returned_array[0]),
                    self.returned_array[1],
                ]
            ),
            "alias_safe": self.alias_safe,
            "hotpath": self.hotpath,
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "FunctionFacts":
        raw_returned = data.get("returned_array")
        returned_array: "ArrayType | None" = None
        if raw_returned is not None:
            dims_raw, dtype_raw = raw_returned
            returned_array = (
                None if dims_raw is None else tuple(str(d) for d in dims_raw),
                str(dtype_raw),
            )
        return FunctionFacts(
            qualname=str(data["qualname"]),
            line=int(data["line"]),
            is_async=bool(data["is_async"]),
            class_name=str(data["class_name"]),
            params=tuple(data["params"]),
            calls=tuple(CallFact.from_json(c) for c in data["calls"]),
            local_types={str(k): str(v) for k, v in data["local_types"].items()},
            param_escapes_direct=tuple(data["escapes"]),
            param_consumes_direct=tuple(data["consumes"]),
            param_passes=tuple(
                (str(p[0]), int(p[1]), p[2] if isinstance(p[2], str) else int(p[2]))
                for p in data["passes"]
            ),
            returned_names=tuple(data["returned"]),
            returned_calls=tuple(int(i) for i in data["returned_calls"]),
            lock_holds=tuple(LockHold.from_json(h) for h in data["lock_holds"]),
            has_await=bool(data["has_await"]),
            array_contracts={
                str(name): (tuple(str(d) for d in entry[0]), str(entry[1]))
                for name, entry in data.get("array_contracts", {}).items()
            },
            array_unresolved=tuple(data.get("array_unresolved", ())),
            returned_array=returned_array,
            alias_safe=bool(data.get("alias_safe", False)),
            hotpath=bool(data.get("hotpath", False)),
        )


@dataclass(frozen=True)
class ClassFacts:
    """One class: bases, methods, and attribute type spellings."""

    qualname: str
    bases: tuple[str, ...]
    methods: tuple[str, ...]
    #: Every attribute name the class visibly assigns (typed or not);
    #: calling one of these is a higher-order call, not a missing method.
    attrs: tuple[str, ...]
    #: ``self.X`` → type spelling ("Recorder", "threading.Lock", "file",
    #: "list[threading.Thread]"), from annotations or constructor calls.
    attr_types: dict[str, str]
    #: True when an explicit ``__init__``/``__new__`` exists.
    has_init: bool

    def to_json(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "attrs": list(self.attrs),
            "attr_types": dict(self.attr_types),
            "has_init": self.has_init,
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "ClassFacts":
        return ClassFacts(
            qualname=str(data["qualname"]),
            bases=tuple(data["bases"]),
            methods=tuple(data["methods"]),
            attrs=tuple(data["attrs"]),
            attr_types={str(k): str(v) for k, v in data["attr_types"].items()},
            has_init=bool(data["has_init"]),
        )


@dataclass(frozen=True)
class ModuleFacts:
    """Per-file facts: imports, classes, functions."""

    #: Module path relative to the package, e.g. ``("gateway", "server")``.
    module_parts: tuple[str, ...]
    #: Local name → dotted target (``{"Recorder": "repro.store.record.Recorder",
    #: "asyncio": "asyncio"}``).
    imports: dict[str, str]
    classes: dict[str, ClassFacts]
    functions: dict[str, FunctionFacts]

    @property
    def dotted(self) -> str:
        return ".".join((_PACKAGE, *self.module_parts))

    def to_json(self) -> dict[str, Any]:
        return {
            "module": list(self.module_parts),
            "imports": dict(self.imports),
            "classes": {k: v.to_json() for k, v in self.classes.items()},
            "functions": {k: v.to_json() for k, v in self.functions.items()},
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "ModuleFacts":
        return ModuleFacts(
            module_parts=tuple(data["module"]),
            imports={str(k): str(v) for k, v in data["imports"].items()},
            classes={
                str(k): ClassFacts.from_json(v) for k, v in data["classes"].items()
            },
            functions={
                str(k): FunctionFacts.from_json(v) for k, v in data["functions"].items()
            },
        )


# ------------------------------------------------------------------ extraction
def _type_spelling(annotation: ast.expr | None) -> str | None:
    """Normalised type spelling of an annotation, or None when unusable.

    ``Recorder | None`` → ``"Recorder"``; ``list[threading.Thread]`` →
    ``"list[threading.Thread]"``; ``Optional[Path]`` → ``"Path"``.
    Anything genuinely polymorphic (unions of two real types, mappings)
    collapses to None — the resolver then treats the receiver as dynamic.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant):
        if isinstance(annotation.value, str):
            try:
                return _type_spelling(ast.parse(annotation.value, mode="eval").body)
            except SyntaxError:
                return None
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return _dotted_of(annotation)
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        sides = [
            _type_spelling(side)
            for side in (annotation.left, annotation.right)
            if not (isinstance(side, ast.Constant) and side.value is None)
        ]
        real = [s for s in sides if s is not None]
        return real[0] if len(real) == 1 else None
    if isinstance(annotation, ast.Subscript):
        head = _type_spelling(annotation.value)
        if head is None:
            return None
        base = head.split(".")[-1]
        if base == "Optional":
            return _type_spelling(annotation.slice)
        if base in ("list", "List"):
            inner = _type_spelling(annotation.slice)
            return f"list[{inner}]" if inner is not None else None
        return None
    return None


def list_element(spelling: str) -> str | None:
    """``"list[T]"`` → ``"T"``, else None."""
    if spelling.startswith("list[") and spelling.endswith("]"):
        return spelling[len("list[") : -1]
    return None


def _dotted_of(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _chain_of(node: ast.expr) -> tuple[str, ...] | None:
    """Receiver chain of a callee expression, or None when dynamic.

    ``self.recorder.append`` → ``("self", "recorder", "append")``;
    ``super().__init__`` → ``("super", "__init__")``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "super"
        and len(parts) == 1
    ):
        return ("super", parts[0])
    return None


def call_fact_of(node: ast.Call, *, awaited: bool = False, discarded: bool = False) -> CallFact | None:
    """The symbolic :class:`CallFact` for one AST call, or None (dynamic)."""
    chain = _chain_of(node.func)
    if chain is None or len(chain) > _MAX_CHAIN:
        return None
    has_star = any(isinstance(a, ast.Starred) for a in node.args) or any(
        kw.arg is None for kw in node.keywords
    )
    return CallFact(
        parts=chain,
        line=node.lineno,
        col=node.col_offset,
        awaited=awaited,
        discarded=discarded,
        has_star_args=has_star,
        n_args=len(node.args),
        kwarg_names=tuple(kw.arg for kw in node.keywords if kw.arg is not None),
    )


_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _iter_own(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes.

    Comprehension bodies are included (they run in place, give or take
    laziness); nested ``def``/``lambda``/``class`` bodies are not — their
    calls belong to their own facts.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _NESTED_SCOPES):
            stack.extend(ast.iter_child_nodes(child))


def _param_names(fn: FunctionLike) -> list[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return names


def _self_attr_target(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _ctor_spelling(value: ast.expr) -> str | None:
    """Type spelling minted by ``X(...)`` / ``open(...)`` initialisers."""
    if not isinstance(value, ast.Call):
        return None
    dotted = _dotted_of(value.func)
    if dotted is None:
        return None
    if dotted == "open":
        return "file"
    last = dotted.split(".")[-1]
    if last and (last[0].isupper() or "." in dotted):
        return dotted
    return None


def _class_facts(cls: ast.ClassDef, qualname: str) -> ClassFacts:
    bases: list[str] = []
    for base in cls.bases:
        dotted = _dotted_of(base)
        if dotted is not None:
            bases.append(dotted)
    methods: list[str] = []
    attr_types: dict[str, str] = {}
    attr_names: set[str] = set()
    has_init = False
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.append(stmt.name)
            if stmt.name in ("__init__", "__new__"):
                has_init = True
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            # Dataclass-style field annotations type the attribute.
            attr_names.add(stmt.target.id)
            spelling = _type_spelling(stmt.annotation)
            if spelling is not None:
                attr_types[stmt.target.id] = spelling
    # ``self.X: T = ...`` / ``self.X = Ctor(...)`` in any method body;
    # explicit annotations win over constructor inference.
    inferred: dict[str, str] = {}
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in _iter_own(stmt):
            if isinstance(node, ast.AnnAssign):
                attr = _self_attr_target(node.target)
                if attr is not None:
                    attr_names.add(attr)
                    spelling = _type_spelling(node.annotation)
                    if spelling is not None:
                        attr_types.setdefault(attr, spelling)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                attr = _self_attr_target(node.targets[0])
                if attr is None:
                    continue
                attr_names.add(attr)
                if attr in attr_types:
                    continue
                spelling = _ctor_spelling(node.value)
                if spelling is not None:
                    inferred.setdefault(attr, spelling)
    for attr, spelling in inferred.items():
        attr_types.setdefault(attr, spelling)
    return ClassFacts(
        qualname=qualname,
        bases=tuple(bases),
        methods=tuple(methods),
        attrs=tuple(sorted(attr_names)),
        attr_types=attr_types,
        has_init=has_init,
    )


def _local_types(
    fn: FunctionLike, attr_types: dict[str, str]
) -> dict[str, str]:
    """Type spellings for parameters and simply-typed locals."""
    types: dict[str, str] = {}
    for arg in fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs:
        spelling = _type_spelling(arg.annotation)
        if spelling is not None:
            types[arg.arg] = spelling
    for node in _iter_own(fn):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            spelling = _type_spelling(node.annotation)
            if spelling is not None:
                types[node.target.id] = spelling
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id not in types:
                spelling = _ctor_spelling(node.value)
                if spelling is not None:
                    types[target.id] = spelling
        elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
            node.target, ast.Name
        ):
            # ``for t in self._threads:`` with a list[...]-typed iterable
            # types the loop variable as the element.
            iter_spelling: str | None = None
            attr = _self_attr_target(node.iter)
            if attr is not None:
                iter_spelling = attr_types.get(attr)
            elif isinstance(node.iter, ast.Name):
                iter_spelling = types.get(node.iter.id)
            if iter_spelling is not None:
                element = list_element(iter_spelling)
                if element is not None:
                    types.setdefault(node.target.id, element)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    spelling = _ctor_spelling(item.context_expr)
                    if spelling is not None:
                        types.setdefault(item.optional_vars.id, spelling)
    return types


#: Method names that release a tracked resource (mirrors provenance
#: RELEASE_METHODS; duplicated literally to keep extraction import-light).
_RELEASE_NAMES = frozenset({"close", "join", "shutdown", "stop", "cancel"})


def _array_facts(
    fn: FunctionLike, params: list[str], pragma: "LinePragmas | None"
) -> tuple[dict[str, tuple[tuple[str, ...], str]], list[str], "ArrayType | None"]:
    """Declared contracts, contract errors, and the inferred return type.

    Contracts come from ``shape(...)`` pragmas on the ``def`` line and
    from the docstring ``Shape:`` block; a pragma wins a disagreement
    only by being reported as a conflict — silently preferring either
    source would let the two drift apart.
    """
    declared: dict[str, ShapeContract] = {}
    errors: list[str] = []
    doc_contracts, doc_errors = parse_docstring_contracts(ast.get_docstring(fn))
    errors.extend(doc_errors)
    pragma_contracts = pragma.shapes if pragma is not None else ()
    for contract in (*pragma_contracts, *doc_contracts.values()):
        previous = declared.get(contract.name)
        if previous is not None:
            if (previous.dims, previous.dtype) != (contract.dims, contract.dtype):
                errors.append(
                    f"conflicting contracts for {contract.name!r}: "
                    f"{previous.dims}/{previous.dtype or '?'} vs "
                    f"{contract.dims}/{contract.dtype or '?'}"
                )
            continue
        declared[contract.name] = contract
    known = set(params) | {"return"}
    for name in declared:
        if name not in known:
            errors.append(f"contract names unknown parameter {name!r}")
    contracts = {
        name: (contract.dims, contract.dtype)
        for name, contract in declared.items()
        if name in known
    }

    returned_array: "ArrayType | None" = None
    if "return" not in contracts and isinstance(
        fn, (ast.FunctionDef, ast.AsyncFunctionDef)
    ):
        env = ShapeEnv(declared)
        env.bind_body(fn)
        for node in _iter_own(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                inferred = env.type_of(node.value)
                if inferred is not None:
                    returned_array = inferred
                    break
    return contracts, errors, returned_array


def _function_facts(
    qualname: str,
    fn: FunctionLike,
    class_name: str,
    attr_types: dict[str, str],
    pragma: "LinePragmas | None" = None,
) -> FunctionFacts:
    is_async = isinstance(fn, ast.AsyncFunctionDef)
    params = _param_names(fn)
    local_types = _local_types(fn, attr_types)
    array_contracts, array_errors, returned_array = _array_facts(fn, params, pragma)

    own_nodes = list(_iter_own(fn))
    awaited_ids = {
        id(node.value) for node in own_nodes if isinstance(node, ast.Await)
    }
    discarded_ids = {
        id(node.value)
        for node in own_nodes
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)
    }
    call_nodes = sorted(
        (node for node in own_nodes if isinstance(node, ast.Call)),
        key=lambda node: (node.lineno, node.col_offset),
    )
    calls: list[CallFact] = []
    call_index: dict[int, int] = {}
    for node in call_nodes:
        fact = call_fact_of(
            node,
            awaited=id(node) in awaited_ids,
            discarded=id(node) in discarded_ids,
        )
        if fact is not None:
            call_index[id(node)] = len(calls)
            calls.append(fact)

    # Parameter escape/consume/pass classification. A parameter load is
    # benign when it is the receiver of a method call or a plain call
    # argument (the pass is then resolved against the callee's summary);
    # every other load context hands the reference somewhere we cannot
    # see, so it escapes.
    tracked = {p for p in params if p not in ("self", "cls")}
    receiver_method: dict[int, str] = {}
    arg_slot: dict[int, tuple[int, Union[int, str]]] = {}
    for node in own_nodes:
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and isinstance(
            node.func.value, ast.Name
        ):
            receiver_method[id(node.func.value)] = node.func.attr
        index = call_index.get(id(node))
        if index is None:
            continue
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Name):
                arg_slot[id(arg)] = (index, position)
        for kw in node.keywords:
            if kw.arg is not None and isinstance(kw.value, ast.Name):
                arg_slot[id(kw.value)] = (index, kw.arg)

    escapes: set[str] = set()
    consumes: set[str] = set()
    passes: list[tuple[str, int, Union[int, str]]] = []
    for node in own_nodes:
        if isinstance(node, _NESTED_SCOPES):
            # Closure capture: any parameter read inside escapes.
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Name)
                    and isinstance(inner.ctx, ast.Load)
                    and inner.id in tracked
                ):
                    escapes.add(inner.id)
            continue
        if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
            continue
        if node.id not in tracked:
            continue
        method = receiver_method.get(id(node))
        if method is not None:
            if method in _RELEASE_NAMES:
                consumes.add(node.id)
            continue  # receiver-only use keeps ownership here
        slot = arg_slot.get(id(node))
        if slot is not None:
            passes.append((node.id, slot[0], slot[1]))
            continue
        escapes.add(node.id)

    returned: list[str] = []
    returned_calls: list[int] = []
    for node in own_nodes:
        if not isinstance(node, ast.Return):
            continue
        if isinstance(node.value, ast.Name):
            returned.append(node.value.id)
        elif isinstance(node.value, ast.Call):
            index = call_index.get(id(node.value))
            if index is not None:
                returned_calls.append(index)

    lock_holds: list[LockHold] = []
    if is_async:
        for node in own_nodes:
            if not isinstance(node, ast.With):
                continue
            body_awaits = any(
                isinstance(inner, ast.Await)
                for stmt in node.body
                for inner in _iter_own(stmt)
            ) or any(isinstance(stmt, ast.Await) for stmt in node.body)
            if not body_awaits:
                continue
            for item in node.items:
                chain = _chain_of(item.context_expr)
                if chain is not None and len(chain) <= _MAX_CHAIN:
                    lock_holds.append(
                        LockHold(
                            parts=chain,
                            line=item.context_expr.lineno,
                            col=item.context_expr.col_offset,
                        )
                    )

    return FunctionFacts(
        qualname=qualname,
        line=fn.lineno,
        is_async=is_async,
        class_name=class_name,
        params=tuple(params),
        calls=tuple(calls),
        local_types=local_types,
        param_escapes_direct=tuple(sorted(escapes)),
        param_consumes_direct=tuple(sorted(consumes)),
        param_passes=tuple(passes),
        returned_names=tuple(returned),
        returned_calls=tuple(returned_calls),
        lock_holds=tuple(lock_holds),
        has_await=bool(awaited_ids),
        array_contracts=array_contracts,
        array_unresolved=tuple(array_errors),
        returned_array=returned_array,
        alias_safe=pragma.alias_safe if pragma is not None else False,
        hotpath=pragma.hotpath if pragma is not None else False,
    )


def _import_map(tree: ast.Module, module_parts: tuple[str, ...]) -> dict[str, str]:
    """Local name → dotted origin for every import in the module."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname if alias.asname else alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against this module's package.
                package = (_PACKAGE, *module_parts[:-1])
                if node.level <= len(package):
                    base_parts = package[: len(package) - (node.level - 1)]
                else:
                    continue
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}"
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname if alias.asname else alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def extract_module_facts(
    module_parts: tuple[str, ...], tree: ast.Module, source: str | None = None
) -> ModuleFacts:
    """Stage 1: purely syntactic facts for one parsed module.

    ``source`` (when available) is scanned for def-line pragmas so that
    shape contracts, ``alias-safe`` and ``hotpath`` markers become part
    of the cached facts; malformed pragma bodies are reported separately
    by the engine's own pragma scan (``bad-pragma``).
    """
    pragmas: dict[int, LinePragmas] = {}
    if source is not None:
        pragmas, _ = scan_pragmas(source)
    classes: dict[str, ClassFacts] = {}

    # Collect classes (including nested ones) with dotted qualnames.
    def _collect(prefix: str, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qualname = f"{prefix}{child.name}"
                classes[qualname] = _class_facts(child, qualname)
                _collect(f"{qualname}.", child)
            elif not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _collect(prefix, child)

    _collect("", tree)

    functions: dict[str, FunctionFacts] = {}
    for qualname, fn in iter_functions(tree):
        head = qualname.rsplit(".", 1)[0] if "." in qualname else ""
        class_name = head if head in classes else ""
        attr_types = classes[class_name].attr_types if class_name else {}
        functions[qualname] = _function_facts(
            qualname, fn, class_name, attr_types, pragmas.get(fn.lineno)
        )

    return ModuleFacts(
        module_parts=module_parts,
        imports=_import_map(tree, module_parts),
        classes=classes,
        functions=functions,
    )


# ------------------------------------------------------------------ resolution
@dataclass(frozen=True)
class Resolution:
    """Where one :class:`CallFact` lands."""

    #: internal | internal-ctor | external | unseen | dynamic | unresolved
    category: str
    #: Fully-qualified target ("repro.store.writer.TraceWriter.append",
    #: "time.sleep"); None for dynamic.
    target: str | None
    #: True when the first positional argument maps to ``params[1]``
    #: (bound method / constructor call).
    bound_receiver: bool = False


_DYNAMIC = Resolution("dynamic", None)


class Project:
    """The resolved whole-tree view: facts registry + call graph."""

    def __init__(self, modules: dict[str, ModuleFacts]) -> None:
        #: Dotted module name → facts.
        self.modules = modules
        self._class_index: dict[str, tuple[ModuleFacts, ClassFacts]] = {}
        self._function_index: dict[str, tuple[ModuleFacts, FunctionFacts]] = {}
        for mod in modules.values():
            for cls in mod.classes.values():
                self._class_index[f"{mod.dotted}.{cls.qualname}"] = (mod, cls)
            for fn in mod.functions.values():
                self._function_index[f"{mod.dotted}.{fn.qualname}"] = (mod, fn)
        self._resolved: dict[str, list[Resolution]] | None = None
        self._stats: dict[str, int] | None = None

    # ------------------------------------------------------------ registries
    def module_of(self, module_parts: tuple[str, ...]) -> ModuleFacts | None:
        return self.modules.get(".".join((_PACKAGE, *module_parts)))

    def function(self, full_qualname: str) -> FunctionFacts | None:
        entry = self._function_index.get(full_qualname)
        return entry[1] if entry is not None else None

    def functions(self) -> Iterator[tuple[str, ModuleFacts, FunctionFacts]]:
        for full, (mod, fn) in self._function_index.items():
            yield full, mod, fn

    def class_facts(self, full_qualname: str) -> ClassFacts | None:
        entry = self._class_index.get(full_qualname)
        return entry[1] if entry is not None else None

    # ----------------------------------------------------------- type lookup
    def resolve_type(self, mod: ModuleFacts, spelling: str) -> str:
        """Canonicalise a type spelling.

        Returns an internal class qualname, ``"file"``, or
        ``external:<dotted>`` / ``unseen:<dotted>`` / ``""`` (unknown).
        """
        if spelling == "file":
            return "file"
        element = list_element(spelling)
        if element is not None:
            inner = self.resolve_type(mod, element)
            return f"list[{inner}]" if inner else ""
        head, _, rest = spelling.partition(".")
        if spelling in mod.classes:
            return f"{mod.dotted}.{spelling}"
        origin = mod.imports.get(head)
        if origin is None:
            return ""
        dotted = f"{origin}.{rest}" if rest else origin
        if dotted in self._class_index:
            return dotted
        if dotted.split(".")[0] == _PACKAGE:
            # Maybe "module import" spelling: repro.store.record.Recorder
            if dotted in self._class_index:
                return dotted
            return f"unseen:{dotted}" if dotted not in self.modules else ""
        return f"external:{dotted}"

    def _base_chain(self, class_qualname: str) -> list[tuple[str, ClassFacts]]:
        """The class and its internal ancestors, nearest first."""
        chain: list[tuple[str, ClassFacts]] = []
        seen: set[str] = set()
        frontier = [class_qualname]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            entry = self._class_index.get(current)
            if entry is None:
                continue
            mod, cls = entry
            chain.append((current, cls))
            for base in cls.bases:
                resolved = self.resolve_type(mod, base)
                if resolved and not resolved.startswith(("external:", "unseen:")):
                    frontier.append(resolved)
        return chain

    def _has_external_base(self, class_qualname: str) -> bool:
        for current, cls in self._base_chain(class_qualname):
            entry = self._class_index[current]
            for base in cls.bases:
                resolved = self.resolve_type(entry[0], base)
                if not resolved or resolved.startswith(("external:", "unseen:")):
                    return True
        return False

    def _lookup_method(self, class_qualname: str, method: str) -> Resolution:
        for current, cls in self._base_chain(class_qualname):
            if method in cls.methods:
                return Resolution("internal", f"{current}.{method}", bound_receiver=True)
        for _current, cls in self._base_chain(class_qualname):
            if method in cls.attrs:
                # Calling a stored attribute (``self._sink(...)``): a
                # higher-order value, not a missing method.
                return _DYNAMIC
        if self._has_external_base(class_qualname):
            return Resolution("external", f"{class_qualname}.{method}")
        return Resolution("unresolved", f"{class_qualname}.{method}")

    def _resolve_class_target(self, dotted: str) -> Resolution | None:
        """Constructor resolution for a canonical class qualname."""
        entry = self._class_index.get(dotted)
        if entry is None:
            return None
        for current, cls in self._base_chain(dotted):
            if cls.has_init:
                return Resolution(
                    "internal", f"{current}.__init__", bound_receiver=True
                )
        return Resolution("internal-ctor", dotted)

    # ------------------------------------------------------------ call resolve
    def resolve_call(
        self, mod: ModuleFacts, fn: FunctionFacts, fact: CallFact
    ) -> Resolution:
        """Stage 2: land one symbolic call somewhere (see module docs)."""
        parts = fact.parts
        if parts[0] == "super":
            if len(parts) == 1:
                # The inner ``super()`` of ``super().m(...)`` is its own
                # Call node; the zero-arg builtin itself does nothing.
                return Resolution("external", "super")
            if fn.class_name:
                entry = self._class_index.get(f"{mod.dotted}.{fn.class_name}")
                if entry is not None and entry[1].bases:
                    base = self.resolve_type(mod, entry[1].bases[0])
                    if base and not base.startswith(("external:", "unseen:")):
                        return self._lookup_method(base, parts[1])
                    if base.startswith("external:"):
                        return Resolution("external", f"{base[9:]}.{parts[1]}")
                    if base.startswith("unseen:"):
                        return Resolution("unseen", f"{base[7:]}.{parts[1]}")
            return _DYNAMIC

        if len(parts) == 1:
            return self._resolve_plain_name(mod, fn, parts[0])

        # Receiver chain: type the root, then walk attributes.
        root = parts[0]
        if root in ("self", "cls") and fn.class_name:
            receiver = f"{mod.dotted}.{fn.class_name}"
        elif root in fn.local_types:
            receiver = self.resolve_type(mod, fn.local_types[root])
        elif root in mod.imports:
            return self._resolve_imported_chain(mod, parts)
        else:
            return _DYNAMIC
        return self._walk_chain(receiver, parts[1:])

    def _walk_chain(self, receiver: str, rest: tuple[str, ...]) -> Resolution:
        """Follow ``rest`` (attributes then a final method) from a type."""
        for step, attr in enumerate(rest):
            last = step == len(rest) - 1
            if not receiver:
                return _DYNAMIC
            if receiver.startswith("external:"):
                return Resolution("external", f"{receiver[9:]}.{'.'.join(rest[step:])}")
            if receiver.startswith("unseen:"):
                return Resolution("unseen", f"{receiver[7:]}.{'.'.join(rest[step:])}")
            if receiver == "file" or receiver.startswith("list["):
                return Resolution("external", f"{receiver}.{'.'.join(rest[step:])}")
            entry = self._class_index.get(receiver)
            if entry is None:
                return _DYNAMIC
            if last:
                return self._lookup_method(receiver, attr)
            attr_mod, attr_cls = entry
            spelling = None
            for current, cls in self._base_chain(receiver):
                if attr in cls.attr_types:
                    attr_mod = self._class_index[current][0]
                    spelling = cls.attr_types[attr]
                    break
            if spelling is None:
                return _DYNAMIC
            receiver = self.resolve_type(attr_mod, spelling)
        return _DYNAMIC

    def _resolve_plain_name(
        self, mod: ModuleFacts, fn: FunctionFacts, name: str
    ) -> Resolution:
        # A nested function defined in this scope or an enclosing one?
        scope = fn.qualname
        while scope:
            nested = f"{scope}.<locals>.{name}"
            if nested in mod.functions:
                return Resolution("internal", f"{mod.dotted}.{nested}")
            scope = scope.rsplit(".<locals>.", 1)[0] if ".<locals>." in scope else ""
        if name in mod.functions:
            return Resolution("internal", f"{mod.dotted}.{name}")
        if name in mod.classes:
            resolved = self._resolve_class_target(f"{mod.dotted}.{name}")
            if resolved is not None:
                return resolved
        if name in fn.local_types:
            return _DYNAMIC  # calling a typed local value: higher-order
        origin = mod.imports.get(name)
        if origin is None:
            if name == "open":
                return Resolution("external", "open")
            return _DYNAMIC  # builtin or module-global we do not model
        return self._resolve_dotted(origin)

    def _resolve_imported_chain(
        self, mod: ModuleFacts, parts: tuple[str, ...]
    ) -> Resolution:
        origin = mod.imports[parts[0]]
        return self._resolve_dotted(".".join((origin, *parts[1:])))

    def _resolve_dotted(self, dotted: str) -> Resolution:
        """Resolve a fully-dotted reference (import-rooted)."""
        if dotted.split(".")[0] != _PACKAGE:
            return Resolution("external", dotted)
        if dotted in self._function_index:
            return Resolution("internal", dotted)
        ctor = self._resolve_class_target(dotted)
        if ctor is not None:
            return ctor
        # Method on an imported class: repro.x.Cls.method
        head, _, method = dotted.rpartition(".")
        if head in self._class_index:
            return self._lookup_method(head, method)
        # Attribute of a known module that is neither function nor class
        # (a module-level constant holding a callable, __all__ tricks...).
        module = head
        while module:
            if module in self.modules:
                return _DYNAMIC
            module = module.rpartition(".")[0]
        return Resolution("unseen", dotted)

    # ------------------------------------------------------------- graph view
    def resolved_calls(self, full_qualname: str) -> list[Resolution]:
        """Per-call resolutions for one function (parallel to facts.calls)."""
        resolved = self._resolved
        if resolved is None:
            resolved = self._resolve_all()
        return resolved.get(full_qualname, [])

    def _resolve_all(self) -> dict[str, list[Resolution]]:
        resolved: dict[str, list[Resolution]] = {}
        stats = {
            "internal": 0,
            "internal-ctor": 0,
            "external": 0,
            "unseen": 0,
            "dynamic": 0,
            "unresolved": 0,
        }
        for full, mod, fn in self.functions():
            out = [self.resolve_call(mod, fn, fact) for fact in fn.calls]
            resolved[full] = out
            for res in out:
                stats[res.category] += 1
        self._resolved = resolved
        self._stats = stats
        return resolved

    def stats(self) -> dict[str, int]:
        """Resolution-category counts over every call in the tree."""
        if self._stats is None:
            self._resolve_all()
        return dict(self._stats or {})

    def unresolved_calls(self) -> list[tuple[str, CallFact]]:
        """Every call that should have resolved but did not (self-check)."""
        out: list[tuple[str, CallFact]] = []
        for full, _, fn in self.functions():
            for fact, res in zip(fn.calls, self.resolved_calls(full)):
                if res.category == "unresolved":
                    out.append((full, fact))
        return out

    def sccs(self) -> list[list[str]]:
        """Strongly-connected components, callees before callers (Tarjan)."""
        edges: dict[str, list[str]] = {}
        for full, _, fn in self.functions():
            targets: list[str] = []
            for res in self.resolved_calls(full):
                if res.category == "internal" and res.target in self._function_index:
                    targets.append(res.target)
            edges[full] = targets

        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []
        counter = 0

        for root in edges:
            if root in index_of:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, cursor = work[-1]
                if cursor == 0:
                    index_of[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                targets = edges[node]
                while cursor < len(targets):
                    succ = targets[cursor]
                    cursor += 1
                    if succ not in index_of:
                        work[-1] = (node, cursor)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if advanced:
                    continue
                work[-1] = (node, cursor)
                if cursor >= len(targets):
                    if lowlink[node] == index_of[node]:
                        component: list[str] = []
                        while True:
                            member = stack.pop()
                            on_stack.discard(member)
                            component.append(member)
                            if member == node:
                                break
                        components.append(component)
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components

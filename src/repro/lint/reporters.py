"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic

__all__ = ["LintResult", "render_text", "render_json"]


@dataclass
class LintResult:
    """Everything one lint run produced, post filtering."""

    #: Findings that fail the run (not suppressed, not baselined).
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Findings absorbed by inline ``disable=`` pragmas.
    suppressed: int = 0
    #: Findings absorbed by the baseline file.
    baselined: int = 0
    #: Baseline fingerprints that matched fewer findings than recorded.
    stale_baseline: list[str] = field(default_factory=list)
    #: Files analysed.
    files: int = 0

    @property
    def ok(self) -> bool:
        """True when the run should exit 0."""
        return not self.diagnostics

    def summary(self) -> str:
        """One human line: counts of findings/files/filters."""
        parts = [
            f"{len(self.diagnostics)} finding{'s' if len(self.diagnostics) != 1 else ''}",
            f"{self.files} files",
        ]
        if self.suppressed:
            parts.append(f"{self.suppressed} suppressed inline")
        if self.baselined:
            parts.append(f"{self.baselined} baselined")
        if self.stale_baseline:
            parts.append(f"{len(self.stale_baseline)} stale baseline entries")
        return "reprolint: " + ", ".join(parts)


def render_text(result: LintResult) -> str:
    """Classic compiler-style report."""
    lines = [diag.render() for diag in result.diagnostics]
    for fingerprint in result.stale_baseline:
        lines.append(f"note: stale baseline entry (finding fixed?): {fingerprint}")
    lines.append(result.summary())
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "findings": [
            {
                "path": d.path,
                "line": d.line,
                "col": d.col,
                "rule": d.rule,
                "message": d.message,
            }
            for d in result.diagnostics
        ],
        "summary": {
            "findings": len(result.diagnostics),
            "files": result.files,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "stale_baseline": list(result.stale_baseline),
            "ok": result.ok,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)

"""Text, JSON, and SARIF reporters for lint results."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import LintRule

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "LintResult",
    "render_json",
    "render_sarif",
    "render_text",
]

#: Exit-code contract (see ``docs/static_analysis.md``): CI can tell a
#: policy failure (fix the code) from a broken run (fix the tooling).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: Rules whose findings mean the *run* is unsound, not that code broke
#: policy — an unparseable file was never actually analysed.
_ERROR_RULES = frozenset({"parse-error"})


@dataclass
class LintResult:
    """Everything one lint run produced, post filtering."""

    #: Findings that fail the run (not suppressed, not baselined).
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Findings absorbed by inline ``disable=`` pragmas.
    suppressed: int = 0
    #: Findings absorbed by the baseline file.
    baselined: int = 0
    #: Baseline fingerprints that matched fewer findings than recorded.
    stale_baseline: list[str] = field(default_factory=list)
    #: Files analysed.
    files: int = 0

    @property
    def ok(self) -> bool:
        """True when the run should exit 0."""
        return not self.diagnostics

    @property
    def exit_code(self) -> int:
        """0 clean, 1 violations, 2 unparseable/unanalysed input."""
        if any(d.rule in _ERROR_RULES for d in self.diagnostics):
            return EXIT_ERROR
        return EXIT_CLEAN if self.ok else EXIT_FINDINGS

    def summary(self) -> str:
        """One human line: counts of findings/files/filters."""
        parts = [
            f"{len(self.diagnostics)} finding{'s' if len(self.diagnostics) != 1 else ''}",
            f"{self.files} files",
        ]
        if self.suppressed:
            parts.append(f"{self.suppressed} suppressed inline")
        if self.baselined:
            parts.append(f"{self.baselined} baselined")
        if self.stale_baseline:
            parts.append(f"{len(self.stale_baseline)} stale baseline entries")
        return "reprolint: " + ", ".join(parts)


def render_text(result: LintResult) -> str:
    """Classic compiler-style report."""
    lines = [diag.render() for diag in result.diagnostics]
    for fingerprint in result.stale_baseline:
        lines.append(f"note: stale baseline entry (finding fixed?): {fingerprint}")
    lines.append(result.summary())
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "findings": [
            {
                "path": d.path,
                "line": d.line,
                "col": d.col,
                "rule": d.rule,
                "message": d.message,
            }
            for d in result.diagnostics
        ],
        "summary": {
            "findings": len(result.diagnostics),
            "files": result.files,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "stale_baseline": list(result.stale_baseline),
            "ok": result.ok,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: Schema pinned by the SARIF 2.1.0 spec; the unit test validates
#: rendered output against a vendored subset of this schema.
_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(result: LintResult, rules: tuple[LintRule, ...]) -> str:
    """SARIF 2.1.0 log, one run, for GitHub code-scanning upload.

    Every active rule is listed in the driver metadata (so suppressed
    runs still document the policy); each finding becomes a ``result``
    with a 1-based region. ``parse-error`` findings are reported at
    level ``error``, policy findings at ``warning`` — matching the
    exit-code split.
    """
    rule_index = {rule.name: i for i, rule in enumerate(rules)}
    sarif_rules: list[dict[str, object]] = [
        {
            "id": rule.name,
            "shortDescription": {"text": rule.summary or rule.name},
        }
        for rule in rules
    ]
    results: list[dict[str, object]] = []
    for diag in result.diagnostics:
        entry: dict[str, object] = {
            "ruleId": diag.rule,
            "level": "error" if diag.rule in _ERROR_RULES else "warning",
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": diag.path},
                        "region": {
                            "startLine": max(1, diag.line),
                            "startColumn": diag.col + 1,
                        },
                    }
                }
            ],
        }
        index = rule_index.get(diag.rule)
        if index is not None:
            entry["ruleIndex"] = index
        results.append(entry)
    payload: dict[str, object] = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": sarif_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)

"""``python -m repro lint`` — the reprolint command.

Kept separate from :mod:`repro.cli` so the linter stays importable
without numpy/scipy: CI can gate on lint even in an environment where
the scientific stack is absent.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import default_jobs, lint_paths
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import all_rules, rules_by_name

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on ``parser`` (shared with repro.cli)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=f"parallel analysis threads (default: {default_jobs()})",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE_NAME}; missing = empty)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to acknowledge every current finding, then exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="RULE[,RULE]",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def _select_rules(spec: str | None) -> tuple:
    registry = rules_by_name()
    if spec is None:
        return all_rules()
    chosen = []
    for name in spec.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in registry:
            known = ", ".join(sorted(registry))
            raise SystemExit(f"reprolint: unknown rule {name!r} (known: {known})")
        chosen.append(registry[name])
    if not chosen:
        raise SystemExit("reprolint: --rules selected nothing")
    return tuple(chosen)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:18} {rule.summary}")
        return 0
    if args.jobs is not None and args.jobs < 1:
        raise SystemExit("reprolint: --jobs must be >= 1")

    rules = _select_rules(args.rules)
    baseline_path = Path(args.baseline)
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        raise SystemExit(f"reprolint: no such path: {', '.join(map(str, missing))}")

    if args.update_baseline:
        # Findings still suppressed inline stay suppressed; the baseline
        # only absorbs what would otherwise be reported.
        result = lint_paths(paths, rules=rules, baseline=Baseline(), jobs=args.jobs)
        Baseline.from_diagnostics(result.diagnostics).save(baseline_path)
        print(
            f"reprolint: baseline {baseline_path} updated "
            f"({len(result.diagnostics)} findings acknowledged)"
        )
        return 0

    result = lint_paths(paths, rules=rules, baseline=baseline, jobs=args.jobs)
    print(render_json(result) if args.format == "json" else render_text(result))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant checker for the BlinkRadar reproduction.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())

"""``python -m repro lint`` — the reprolint command.

Kept separate from :mod:`repro.cli` so the linter stays importable
without numpy/scipy: CI can gate on lint even in an environment where
the scientific stack is absent.
"""

from __future__ import annotations

import argparse
import subprocess
from collections import Counter
from pathlib import Path

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.lint.engine import (
    build_project,
    default_jobs,
    discover_files,
    lint_paths,
)
from repro.lint.reporters import (
    EXIT_ERROR,
    render_json,
    render_sarif,
    render_text,
)
from repro.lint.rules import all_rules, rules_by_name

__all__ = [
    "add_lint_arguments",
    "changed_files",
    "run_lint",
    "run_lint_safely",
    "main",
]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on ``parser`` (shared with repro.cli)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the report to PATH instead of stdout (summary still prints)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="lint only files changed vs the git REF (default when bare: HEAD), "
        "plus untracked files, intersected with the given paths",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help=f"memoise per-file results under {DEFAULT_CACHE_DIR}/ keyed on "
        "content + rule set; unchanged files are not re-analysed",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"cache location when --cache is on (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=f"parallel analysis threads (default: {default_jobs()})",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE_NAME}; missing = empty)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to acknowledge every current finding, then exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="RULE[,RULE]",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print a pragma inventory and call-resolution table for the "
        "given paths, then exit (fresh scan; the cache is not consulted)",
    )


def _select_rules(spec: str | None) -> tuple:
    registry = rules_by_name()
    if spec is None:
        return all_rules()
    chosen = []
    for name in spec.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in registry:
            known = ", ".join(sorted(registry))
            raise SystemExit(f"reprolint: unknown rule {name!r} (known: {known})")
        chosen.append(registry[name])
    if not chosen:
        raise SystemExit("reprolint: --rules selected nothing")
    return tuple(chosen)


def changed_files(ref: str, root: Path | None = None) -> set[Path]:
    """Files changed vs ``ref`` plus untracked files, as resolved paths.

    Raises ``SystemExit(2)`` when git cannot answer (not a repository,
    unknown ref): a silent empty diff would report "clean" for a run
    that never looked at anything.
    """
    base = root if root is not None else Path.cwd()
    commands = (
        ["git", "diff", "--name-only", "-z", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard", "-z"],
    )
    names: set[str] = set()
    for command in commands:
        try:
            proc = subprocess.run(
                command,
                cwd=base,
                capture_output=True,
                text=True,
                check=True,
                timeout=60,
            )
        except (OSError, subprocess.SubprocessError) as exc:
            detail = ""
            if isinstance(exc, subprocess.CalledProcessError):
                detail = (exc.stderr or "").strip()
            raise SystemExit(
                f"reprolint: --changed could not run {' '.join(command)}: "
                f"{detail or exc}"
            ) from exc
        names.update(name for name in proc.stdout.split("\0") if name)
    return {(base / name).resolve() for name in names}


def _narrow_to_changed(paths: list[Path], ref: str) -> list[Path]:
    changed = changed_files(ref)
    return [f for f in discover_files(paths) if f.resolve() in changed]


def _print_table(title: str, rows: dict[str, int]) -> None:
    print(title)
    width = max((len(name) for name in rows), default=0)
    for name, count in rows.items():
        print(f"  {name:<{width}}  {count}")
    print(f"  {'total':<{width}}  {sum(rows.values())}")


def run_stats(paths: list[Path]) -> int:
    """Print the pragma inventory and call-resolution census for ``paths``.

    Both tables come from a fresh scan — the result cache is never
    consulted, so a stale cache cannot hide a pragma added (or removed)
    since the last run.
    """
    from repro.lint.suppress import scan_pragmas

    files = discover_files(paths)
    pragmas: Counter[str] = Counter()
    scanned = 0
    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        scanned += 1
        per_line, errors = scan_pragmas(text)
        for line in per_line.values():
            for rule in line.disabled:
                pragmas[f"disable={rule}"] += 1
            pragmas.update({"guarded-by": len(line.guarded_by)})
            if line.unguarded_ok:
                pragmas["unguarded-ok"] += 1
            if line.moves:
                pragmas["moves"] += 1
            if line.hotpath:
                pragmas["hotpath"] += 1
            if line.shapes:
                pragmas["shape"] += len(line.shapes)
            if line.alias_safe:
                pragmas["alias-safe"] += 1
        if errors:
            pragmas["malformed"] += len(errors)

    _print_table(
        f"reprolint: pragma inventory ({scanned} files scanned)",
        dict(sorted(pragmas.items())),
    )
    analysis = build_project(files, Path.cwd(), None)
    stats = analysis.project.stats()
    print()
    _print_table(
        "reprolint: call resolution",
        {name: stats[name] for name in sorted(stats)},
    )
    unresolved = analysis.project.unresolved_calls()
    if unresolved:
        print()
        print("reprolint: unresolved call sites:")
        for caller, fact in unresolved:
            print(f"  {caller}:{fact.line} -> {'.'.join(fact.parts)}")

    print()
    _print_array_census(analysis, files)
    return 0


#: The array-contract rule family, in catalogue order (census rows).
_ARRAY_RULES = (
    "shape-mismatch",
    "dtype-drop",
    "hotpath-copy",
    "out-aliasing",
    "view-escape",
)


def _print_array_census(analysis, files: list[Path]) -> None:
    """Array-contract census: who declares, who inherits, who is covered.

    The ``hotpath contract coverage`` line is a CI gate: every function
    marked ``hotpath`` must declare its array contract (the hot-path
    rules are only as good as the contracts they check against), so CI
    greps this output for ``100%``. Per-rule finding counts come from a
    fresh baseline-free run of the array rules only.
    """
    summaries = analysis.summaries.values()
    declared = [s for s in summaries if s.declares_contracts]
    inherited = [
        s for s in summaries if s.array_params and not s.declares_contracts
    ]
    inferred_returns = [
        s
        for s in summaries
        if s.returns_array is not None and not s.declares_contracts
    ]
    unresolved_contracts = [
        (f"{mod.dotted}.{fn.qualname}", detail)
        for _, mod, fn in analysis.project.functions()
        for detail in fn.array_unresolved
    ]
    hot = [s for s in summaries if s.hotpath]
    hot_covered = [s for s in hot if s.array_params or s.returns_array]
    total = len(declared) + len(inherited) + len(inferred_returns)
    declared_pct = 100 * len(declared) // total if total else 0
    hot_pct = 100 * len(hot_covered) // len(hot) if hot else 100

    _print_table(
        "reprolint: array-contract census",
        {
            "declared contracts": len(declared),
            "inherited contracts": len(inherited),
            "inferred return types": len(inferred_returns),
            "unresolved contracts": len(unresolved_contracts),
        },
    )
    print(f"  declared share            {declared_pct}%")
    print(
        f"  hotpath contract coverage {hot_pct}% "
        f"({len(hot_covered)}/{len(hot)} hotpath-marked functions)"
    )
    for qualname, detail in unresolved_contracts:
        print(f"    unresolved: {qualname}: {detail}")

    registry = rules_by_name()
    rules = tuple(registry[name] for name in _ARRAY_RULES if name in registry)
    result = lint_paths(files, rules=rules, baseline=Baseline())
    counts = Counter(diag.rule for diag in result.diagnostics)
    print()
    _print_table(
        "reprolint: array-contract findings",
        {name: counts.get(name, 0) for name in _ARRAY_RULES},
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:18} {rule.summary}")
        return 0
    if args.stats:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            raise SystemExit(
                f"reprolint: no such path: {', '.join(map(str, missing))}"
            )
        return run_stats(paths)
    if args.jobs is not None and args.jobs < 1:
        raise SystemExit("reprolint: --jobs must be >= 1")

    rules = _select_rules(args.rules)
    baseline_path = Path(args.baseline)
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        raise SystemExit(f"reprolint: no such path: {', '.join(map(str, missing))}")
    if args.changed is not None:
        paths = _narrow_to_changed(paths, args.changed)
    cache = ResultCache(Path(args.cache_dir)) if args.cache else None

    if args.update_baseline:
        # Findings still suppressed inline stay suppressed; the baseline
        # only absorbs what would otherwise be reported.
        result = lint_paths(paths, rules=rules, baseline=Baseline(), jobs=args.jobs)
        Baseline.from_diagnostics(result.diagnostics).save(baseline_path)
        print(
            f"reprolint: baseline {baseline_path} updated "
            f"({len(result.diagnostics)} findings acknowledged)"
        )
        return 0

    result = lint_paths(
        paths, rules=rules, baseline=baseline, jobs=args.jobs, cache=cache
    )
    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result, rules)
    else:
        report = render_text(result)
    if args.output is not None:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        print(result.summary())
    else:
        print(report)
    return result.exit_code


def run_lint_safely(args: argparse.Namespace) -> int:
    """:func:`run_lint` with internal faults mapped to exit code 2.

    CI keys off the exit code: 1 means "the code broke policy", 2 means
    "the linter itself did not produce a verdict" (crash, unreadable
    input). A traceback leaking out as a generic nonzero exit would make
    a tooling failure look like a finding.
    """
    try:
        return run_lint(args)
    except SystemExit:
        raise  # usage errors keep argparse semantics
    except Exception as exc:  # reprolint: disable=except-hygiene
        print(f"reprolint: internal error: {type(exc).__name__}: {exc}")
        return EXIT_ERROR


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant checker for the BlinkRadar reproduction.",
    )
    add_lint_arguments(parser)
    return run_lint_safely(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())

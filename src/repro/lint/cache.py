"""Content-hash result cache for repeated lint runs.

Pre-commit and CI lint the same mostly-unchanged tree over and over; the
dataflow rules make a cold run meaningfully more expensive than PR 3's
lexical pass, so clean files should not be re-analysed. The cache maps
``sha256(cache version | rule fingerprint | display path | file bytes)``
to the file's post-suppression findings. Any input that could change a
finding is part of the key, so invalidation is automatic: edit the file,
rename it, change the rule set, or bump :data:`CACHE_VERSION` when the
engine itself changes, and the entry simply never matches again.

The fingerprint (:func:`rule_fingerprint`) is not just the rule names:
each rule carries a ``version`` that its author bumps on any behaviour
change, and the engine appends the interprocedural summary digest, so
editing a rule — or editing a *callee* whose summary a finding depended
on — invalidates exactly the entries that could now be stale. Matching
on names alone was a staleness hazard: a re-tuned rule would keep
serving its old findings from cache until the file itself changed.

Entries are one JSON file per key under ``.reprolint_cache/``, written
atomically (temp file + rename) so concurrent workers and interrupted
runs can never leave a half-written entry that parses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.lint.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.rules import LintRule

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "rule_fingerprint",
]

#: Bump whenever rule or engine behaviour changes in a way the rule
#: fingerprint cannot capture (new analysis precision, message
#: rewording, ...).
CACHE_VERSION = "3"

DEFAULT_CACHE_DIR = ".reprolint_cache"


def rule_fingerprint(rules: "Sequence[LintRule]") -> str:
    """``name@version`` fingerprint of a rule set, in activation order."""
    return ";".join(f"{rule.name}@{rule.version}" for rule in rules)


class ResultCache:
    """File-backed memo of per-file lint outcomes."""

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def key(self, display: str, source: bytes, fingerprint: str) -> str:
        """Stable digest of everything that can change this file's findings.

        ``fingerprint`` is the :func:`rule_fingerprint` of the active
        rules, with the engine's summary digest appended when the run is
        interprocedural.
        """
        hasher = hashlib.sha256()
        for part in (CACHE_VERSION, fingerprint, display):
            hasher.update(part.encode("utf-8"))
            hasher.update(b"\x00")
        hasher.update(source)
        return hasher.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> tuple[list[Diagnostic], int] | None:
        """Cached ``(diagnostics, suppressed)`` for ``key``, or None."""
        try:
            payload = json.loads(self._entry_path(key).read_text(encoding="utf-8"))
            diagnostics = [
                Diagnostic(
                    path=str(d["path"]),
                    line=int(d["line"]),
                    col=int(d["col"]),
                    rule=str(d["rule"]),
                    message=str(d["message"]),
                )
                for d in payload["diagnostics"]
            ]
            suppressed = int(payload["suppressed"])
        except (OSError, ValueError, TypeError, KeyError):
            return None  # absent or unreadable: treat as a miss
        self.hits += 1
        return diagnostics, suppressed

    def put(self, key: str, diagnostics: list[Diagnostic], suppressed: int) -> None:
        """Record one file's outcome; failures to write are non-fatal."""
        self.misses += 1
        payload = {
            "diagnostics": [
                {
                    "path": d.path,
                    "line": d.line,
                    "col": d.col,
                    "rule": d.rule,
                    "message": d.message,
                }
                for d in diagnostics
            ],
            "suppressed": suppressed,
        }
        entry = self._entry_path(key)
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=entry.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                os.replace(tmp_name, entry)
            except OSError:
                os.unlink(tmp_name)
                raise
        except OSError:
            return  # a read-only checkout must still lint

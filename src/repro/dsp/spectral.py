"""Spectral utilities: spectra, spectrograms and range-time maps.

Used for the paper's signal-design figures (Fig. 5: pulse in time and
frequency domain), the multipath range profile (Fig. 6(b)) and the
range-time power maps around background subtraction (Fig. 8).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "amplitude_spectrum",
    "power_spectrum",
    "spectrogram",
    "range_time_map",
    "dominant_frequency",
]


def amplitude_spectrum(x: np.ndarray, fs: float) -> tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectrum ``(freqs, |X(f)|)`` of a real signal.

    Parameters
    ----------
    x:
        1-D real signal.
    fs:
        Sampling rate in Hz.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or len(x) == 0:
        raise ValueError("amplitude_spectrum expects a non-empty 1-D signal")
    spectrum = np.fft.rfft(x)
    freqs = np.fft.rfftfreq(len(x), d=1.0 / fs)
    return freqs, np.abs(spectrum)


def power_spectrum(x: np.ndarray, fs: float) -> tuple[np.ndarray, np.ndarray]:
    """One-sided power spectrum ``(freqs, |X(f)|²/N)`` of a (possibly complex) signal."""
    x = np.asarray(x)
    if x.ndim != 1 or len(x) == 0:
        raise ValueError("power_spectrum expects a non-empty 1-D signal")
    if np.iscomplexobj(x):
        spectrum = np.fft.fft(x)
        freqs = np.fft.fftfreq(len(x), d=1.0 / fs)
        order = np.argsort(freqs)
        return freqs[order], (np.abs(spectrum[order]) ** 2) / len(x)
    spectrum = np.fft.rfft(x)
    freqs = np.fft.rfftfreq(len(x), d=1.0 / fs)
    return freqs, (np.abs(spectrum) ** 2) / len(x)


def spectrogram(
    x: np.ndarray, fs: float, nfft: int = 256, hop: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Hann-windowed magnitude spectrogram ``(freqs, times, S)`` of a real signal."""
    x = np.asarray(x, dtype=float)
    if hop is None:
        hop = nfft // 2
    if hop < 1 or nfft < 2:
        raise ValueError("nfft must be >= 2 and hop >= 1")
    if len(x) < nfft:
        raise ValueError(f"signal length {len(x)} shorter than nfft {nfft}")
    window = np.hanning(nfft)
    starts = np.arange(0, len(x) - nfft + 1, hop)
    frames = np.stack([x[s : s + nfft] * window for s in starts])
    spect = np.abs(np.fft.rfft(frames, axis=1)).T
    freqs = np.fft.rfftfreq(nfft, d=1.0 / fs)
    times = (starts + nfft / 2) / fs
    return freqs, times, spect


def range_time_map(frames: np.ndarray) -> np.ndarray:
    """Power of each range bin over slow time: ``|frames|²``.

    ``frames`` is the (n_frames, n_bins) complex baseband matrix; the result
    is the real power map used in the background-subtraction figures
    (Fig. 8), where static reflectors appear as constant horizontal lines.
    """
    frames = np.asarray(frames)
    if frames.ndim != 2:
        raise ValueError("range_time_map expects a (n_frames, n_bins) matrix")
    return np.abs(frames) ** 2


def dominant_frequency(x: np.ndarray, fs: float, fmin: float = 0.0) -> float:
    """Frequency (Hz) of the largest spectral peak of ``x`` above ``fmin``.

    Used by the frequency-domain baseline detector and by tests on the
    respiration/heartbeat simulators.
    """
    freqs, power = power_spectrum(np.asarray(x) - np.mean(x), fs)
    mask = freqs >= fmin
    if not mask.any():
        raise ValueError(f"no spectral bins above fmin={fmin}")
    sub_f, sub_p = freqs[mask], power[mask]
    return float(sub_f[int(np.argmax(sub_p))])

"""Algebraic circle fitting: Kåsa, Pratt and Taubin methods.

BlinkRadar estimates the "optimal viewing position" — the centre of the arc
traced in the I/Q plane by the rotating dynamic vector — by fitting a circle
to complex baseband samples (Sec. IV-E). The paper uses the **Pratt** method
because it is "lightweight and robust"; Kåsa and Taubin are provided as
alternatives and for ablation.

All three methods solve algebraic (non-iterative) least-squares problems and
therefore run in O(n) plus a tiny fixed-size eigenproblem, suiting the
real-time constraint of the paper (results every 40 ms).

References
----------
- V. Pratt, "Direct least-squares fitting of algebraic surfaces",
  SIGGRAPH 1987.
- G. Taubin, "Estimation of planar curves, surfaces and nonplanar space
  curves defined by implicit equations", IEEE TPAMI 1991.
- I. Kåsa, "A circle fitting procedure and its error analysis",
  IEEE Trans. Instrum. Meas. 1976.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CircleFit",
    "fit_circle_kasa",
    "fit_circle_pratt",
    "fit_circle_taubin",
    "fit_circle_robust",
]


@dataclass(frozen=True)
class CircleFit:
    """Result of a circle fit.

    Attributes
    ----------
    center:
        Circle centre as a complex number ``cx + 1j*cy`` (the I/Q-plane
        "viewing position").
    radius:
        Circle radius.
    rmse:
        Root-mean-square radial residual of the fitted points.
    """

    center: complex
    radius: float
    rmse: float

    @property
    def cx(self) -> float:
        """Centre abscissa (in-phase component)."""
        return self.center.real

    @property
    def cy(self) -> float:
        """Centre ordinate (quadrature component)."""
        return self.center.imag

    def distance_to(self, points: np.ndarray) -> np.ndarray:
        """Euclidean distance from ``points`` (complex array) to the centre."""
        return np.abs(np.asarray(points) - self.center)


def _as_xy(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split complex samples (or an (n, 2) array) into x and y coordinates."""
    pts = np.asarray(points)
    if np.iscomplexobj(pts):
        return pts.real.astype(float).ravel(), pts.imag.astype(float).ravel()
    if pts.ndim == 2 and pts.shape[1] == 2:
        return pts[:, 0].astype(float), pts[:, 1].astype(float)
    raise ValueError("points must be a complex array or an (n, 2) real array")


def _finish(x: np.ndarray, y: np.ndarray, cx: float, cy: float, r: float) -> CircleFit:
    radial = np.hypot(x - cx, y - cy) - r
    rmse = float(np.sqrt(np.mean(radial**2))) if len(x) else 0.0
    return CircleFit(center=complex(cx, cy), radius=float(r), rmse=rmse)


def _require_points(x: np.ndarray, minimum: int) -> None:
    if len(x) < minimum:
        raise ValueError(f"circle fit requires at least {minimum} points, got {len(x)}")


def fit_circle_kasa(points: np.ndarray) -> CircleFit:
    """Kåsa fit: linear least squares on ``x² + y² + D·x + E·y + F = 0``.

    Fastest of the three but biased toward smaller radii when the points
    cover only a short arc — exactly the BlinkRadar regime — which is why
    the paper prefers Pratt. Provided for the ablation benchmark.
    """
    x, y = _as_xy(points)
    _require_points(x, 3)
    a = np.column_stack([x, y, np.ones_like(x)])
    b = x**2 + y**2
    sol, *_ = np.linalg.lstsq(a, b, rcond=None)
    cx, cy = sol[0] / 2.0, sol[1] / 2.0
    r2 = sol[2] + cx**2 + cy**2
    r = float(np.sqrt(max(r2, 0.0)))
    return _finish(x, y, cx, cy, r)


def _moment_matrix(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, float, float]:
    """Build the 4x4 moment matrix M of z=(x²+y², x, y, 1) about the centroid."""
    xm, ym = float(np.mean(x)), float(np.mean(y))
    u, v = x - xm, y - ym
    z = u**2 + v**2
    design = np.column_stack([z, u, v, np.ones_like(u)])
    m = design.T @ design / len(u)
    return m, xm, ym


def _solve_constrained(m: np.ndarray, constraint: np.ndarray) -> np.ndarray:
    """Solve min aᵀMa subject to aᵀCa = 1 via the generalised eigenproblem.

    Returns the eigenvector of ``C⁻¹M`` (computed stably through
    ``scipy``-free numpy eig on the pencil) with the smallest positive
    eigenvalue, the standard recipe for Pratt/Taubin fits.
    """
    # Generalised eigenproblem M a = eta C a. C here is invertible on the
    # subspace of interest but singular overall, so solve via eig of the
    # pencil using numpy's eig on pinv(C) @ M with a fallback.
    try:
        pencil = np.linalg.solve(constraint, m)
    except np.linalg.LinAlgError:
        pencil = np.linalg.pinv(constraint) @ m
    eigvals, eigvecs = np.linalg.eig(pencil)
    eigvals = np.real_if_close(eigvals)
    eigvecs = np.real_if_close(eigvecs)
    # Keep real, non-negative, finite eigenvalues and pick the smallest.
    # "Non-negative" must tolerate tiny negative rounding: for an exact
    # circle the true solution has eigenvalue 0, and rejecting it would
    # hand back a spurious root.
    scale = max((abs(v.real) for v in eigvals if np.isfinite(v.real)), default=0.0)
    tol = 1e-9 * scale if scale > 0 else 1e-300
    candidates = [
        (float(val.real), i)
        for i, val in enumerate(eigvals)
        if abs(val.imag) < 1e-9 and np.isfinite(val.real) and val.real > -tol
    ]
    if not candidates:
        raise np.linalg.LinAlgError("no admissible eigenvalue in constrained circle fit")
    _, idx = min(candidates)
    vec = np.real(eigvecs[:, idx])
    return vec


def _center_radius_from_coeffs(vec: np.ndarray, xm: float, ym: float) -> tuple[float, float, float]:
    """Convert algebraic coefficients (A, B, C, D) back to centre/radius."""
    a_coef, b_coef, c_coef, d_coef = vec
    if abs(a_coef) < 1e-14:
        raise np.linalg.LinAlgError("degenerate (line-like) circle fit")
    cx_local = -b_coef / (2.0 * a_coef)
    cy_local = -c_coef / (2.0 * a_coef)
    r2 = cx_local**2 + cy_local**2 - d_coef / a_coef
    r = float(np.sqrt(max(r2, 0.0)))
    return cx_local + xm, cy_local + ym, r


def fit_circle_pratt(points: np.ndarray) -> CircleFit:
    """Pratt fit: minimise aᵀMa subject to B² + C² − 4AD = 1.

    The constraint normalises by the circle's gradient, removing the small-
    radius bias of Kåsa on short arcs. This is the method BlinkRadar deploys
    for viewing-position estimation (Sec. IV-E, "the well-known Pratt
    method ... lightweight and robust").

    Falls back to the Kåsa solution when the constrained eigenproblem is
    degenerate (e.g. collinear points), so callers always get a usable fit.
    """
    x, y = _as_xy(points)
    _require_points(x, 3)
    m, xm, ym = _moment_matrix(x, y)
    constraint = np.array(
        [
            [0.0, 0.0, 0.0, -2.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [-2.0, 0.0, 0.0, 0.0],
        ]
    )
    try:
        vec = _solve_constrained(m, constraint)
        cx, cy, r = _center_radius_from_coeffs(vec, xm, ym)
    except np.linalg.LinAlgError:
        return fit_circle_kasa(points)
    return _finish(x, y, cx, cy, r)


def fit_circle_taubin(points: np.ndarray) -> CircleFit:
    """Taubin fit: minimise aᵀMa subject to the Taubin normalisation.

    Near-identical accuracy to Pratt with a slightly different constraint
    matrix built from the data moments. Provided for ablation.
    """
    x, y = _as_xy(points)
    _require_points(x, 3)
    m, xm, ym = _moment_matrix(x, y)
    u, v = x - xm, y - ym
    z = u**2 + v**2
    zm, um, vm = float(np.mean(z)), float(np.mean(u)), float(np.mean(v))
    constraint = np.array(
        [
            [4.0 * zm, 2.0 * um, 2.0 * vm, 0.0],
            [2.0 * um, 1.0, 0.0, 0.0],
            [2.0 * vm, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
        ]
    )
    try:
        vec = _solve_constrained(m, constraint)
        cx, cy, r = _center_radius_from_coeffs(vec, xm, ym)
    except np.linalg.LinAlgError:
        return fit_circle_kasa(points)
    return _finish(x, y, cx, cy, r)


def fit_circle_robust(
    points: np.ndarray,
    method: str = "pratt",
    trim: float = 0.3,
    iterations: int = 2,
) -> CircleFit:
    """Trimmed iterative circle fit.

    Fits with the chosen algebraic method, discards the ``trim`` fraction
    of points with the largest absolute radial residual, and refits;
    repeated ``iterations`` times. BlinkRadar's arc is traced by blink-free
    head motion, but up to a third of a drowsy driver's samples sit off
    the arc (mid-blink); trimming makes the viewing position insensitive
    to them without needing to know which samples are blinks.

    Parameters
    ----------
    points:
        Complex samples (or (n, 2) reals), at least 3 after trimming.
    method:
        ``"pratt"`` (default, the paper's choice), ``"kasa"`` or
        ``"taubin"``.
    trim:
        Fraction of worst-residual points dropped per iteration, in
        [0, 0.5).
    iterations:
        Number of trim-and-refit rounds (0 = plain fit).
    """
    fitters = {"pratt": fit_circle_pratt, "kasa": fit_circle_kasa, "taubin": fit_circle_taubin}
    if method not in fitters:
        raise ValueError(f"unknown fit method {method!r}; expected one of {sorted(fitters)}")
    if not 0.0 <= trim < 0.5:
        raise ValueError(f"trim must be in [0, 0.5), got {trim}")
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    fit_fn = fitters[method]
    pts = np.asarray(points)
    if not np.iscomplexobj(pts):
        x, y = _as_xy(pts)
        pts = x + 1j * y
    pts = pts.ravel()
    fit = fit_fn(pts)
    for _ in range(iterations):
        if trim == 0.0 or len(pts) < 6:
            break
        residuals = np.abs(np.abs(pts - fit.center) - fit.radius)
        keep = residuals <= np.quantile(residuals, 1.0 - trim)
        if keep.sum() < max(3, len(pts) // 3):
            break
        pts = pts[keep]
        fit = fit_fn(pts)
    return fit


def dominant_radius(r: np.ndarray, n_bins: int = 24) -> float:
    """Mode of a radial-distance distribution (densest sliding window).

    For BlinkRadar's two-ring geometry — an open-eye arc holding the
    majority of samples and an inner closed-eye arc — the *mode* of
    r = |z − c| sits on the dominant (open) ring even when ``c`` is a
    biased centre estimate, unlike the median, which can land between the
    rings. Used by :func:`fit_circle_dominant` to select the ring to fit.

    The mode is located with a sliding window of width ``ptp(r)/n_bins``
    (the densest such window wins, and its sample mean is returned)
    rather than a fixed-edge histogram: fixed bins split each ring across
    edges at random, and an unlucky split can hand the peak bin to a
    minority ring even when the majority ring holds 2/3 of the samples.
    """
    r = np.asarray(r, dtype=float).ravel()
    if r.size == 0:
        raise ValueError("dominant_radius requires at least one sample")
    return _dominant_radius_sorted(np.sort(r), n_bins)


def _dominant_radius_sorted(ordered: np.ndarray, n_bins: int = 24) -> float:
    """:func:`dominant_radius` on an already-sorted sample vector.

    Sorting once and reading the median/ptp off the order statistics
    (the exact arithmetic ``np.median`` performs) lets the multi-start
    scoring loop share one batched sort across all candidate centres.
    """
    n = ordered.size
    half = n >> 1
    med = float(ordered[half]) if n & 1 else float((ordered[half - 1] + ordered[half]) * 0.5)
    if n < 4 or ordered[-1] - ordered[0] <= 1e-12 * max(abs(med), 1e-300):
        return med
    width = float(ordered[-1] - ordered[0]) / n_bins
    ends = ordered.searchsorted(ordered + width, side="right")
    counts = ends - np.arange(n)
    start = int(counts.argmax())
    return float(ordered[start : ends[start]].mean())


def ring_concentration(points: np.ndarray, center: complex, tol: float = 0.08) -> float:
    """Fraction of samples lying within ``tol`` of the dominant ring.

    A concentration score for candidate centres: from the *true* common
    centre of BlinkRadar's concentric open/closed-eye arcs, the dominant
    ring is razor thin and captures most samples; from a biased centre the
    rings smear and the score collapses. Used to pick among multi-start
    candidates in :func:`fit_circle_dominant`.

    The acceptance band is ``tol`` times the ring radius, but capped at
    ``tol`` times a few data spreads: from a centre far outside the data,
    every sample collapses into a radially thin sliver whose *relative*
    thickness shrinks like 1/distance, so an uncapped relative band would
    score arbitrary distant centres as near-perfect rings. The cap keeps
    the score scale-equivariant (both terms are lengths of the data)
    while making it a property of the data's own geometry.
    """
    pts = np.asarray(points).ravel()
    spread = float(np.sqrt(np.mean(np.abs(pts - np.mean(pts)) ** 2)))
    return _ring_score(np.sort(np.abs(pts - center)), spread, tol)


def _ring_score(ordered_radii: np.ndarray, spread: float, tol: float = 0.08) -> float:
    """:func:`ring_concentration` from sorted radii and a hoisted spread.

    The spread is a property of the points alone, yet the public function
    recomputes it per candidate centre; the multi-start loop hoists it
    out and scores every candidate from one batched radius sort.
    """
    ring = _dominant_radius_sorted(ordered_radii)
    band = tol * max(min(ring, 3.0 * spread), 1e-300)
    return np.count_nonzero(np.abs(ordered_radii - ring) <= band) / ordered_radii.size


def fit_circle_dominant(
    points: np.ndarray,
    method: str = "pratt",
    band: float = 0.2,
    iterations: int = 4,
) -> CircleFit:
    """Circle fit that converges to the *dominant concentric ring*.

    BlinkRadar's I/Q samples live on two concentric arcs (eyes open /
    eyes closed) plus transition points. A plain algebraic fit returns a
    compromise circle between the rings, and residual-trimmed fits keep
    the mixture; for a drowsy driver (blinks ~40 % of samples) both are
    biased far outside the attraction basin of naive local iteration.

    This fit therefore proceeds in three stages:

    1. **Multi-start** — candidate centres are laid out along the ray from
       the data centroid through the plain-fit centre (the perpendicular
       bisector of a short arc, where the true centre must lie), at
       several multiples of the plain-fit distance.
    2. **Scoring** — each candidate is scored by
       :func:`ring_concentration`; the true centre makes the dominant ring
       razor thin, so the score is sharply peaked at the right scale.
    3. **Mode-gated iteration** — from the best candidate, alternate
       (a) locate the dominant ring as the histogram mode of radial
       distances and (b) refit on the samples within ``band`` of it.

    Falls back to the plain fit if the gated sample set degenerates.

    Domain: the dominant ring must hold a clear majority of the samples.
    Validated (property-based tests) up to ~35 % contamination — the
    drowsy-driver regime; near 50/50 mixtures the "dominant" ring is
    genuinely ambiguous and recovery is not guaranteed.
    """
    fitters = {"pratt": fit_circle_pratt, "kasa": fit_circle_kasa, "taubin": fit_circle_taubin}
    if method not in fitters:
        raise ValueError(f"unknown fit method {method!r}; expected one of {sorted(fitters)}")
    if not 0.0 < band < 1.0:
        raise ValueError(f"band must be in (0, 1), got {band}")
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    fit_fn = fitters[method]
    pts = np.asarray(points)
    if not np.iscomplexobj(pts):
        x, y = _as_xy(pts)
        pts = x + 1j * y
    pts = pts.ravel()

    plain = fit_fn(pts)
    centroid = complex(np.mean(pts))
    spread = float(np.sqrt(np.mean(np.abs(pts - centroid) ** 2)))
    if spread < 1e-300:
        return plain

    # Candidate centres: the plain fit itself, points along the
    # centroid→plain-fit ray (the arc's perpendicular bisector when the
    # plain fit is sane), and a coarse polar grid around the centroid for
    # when ring mixing has collapsed the plain fit into the data blob.
    candidates: list[complex] = [plain.center]
    offset = plain.center - centroid
    if abs(offset) > 1e-12 * spread:
        direction = offset / abs(offset)
        for factor in (0.6, 1.5, 2.2, 3.2, 4.5):
            candidates.append(centroid + factor * abs(offset) * direction)
    for scale in (1.0, 2.0, 3.5, 6.0):
        for k in range(8):
            candidates.append(centroid + scale * spread * np.exp(1j * (np.pi * k / 4.0)))

    # Score every candidate off one batched |pts − c| matrix and one
    # row-wise sort; identical arithmetic to scoring them one at a time.
    centers = np.asarray(candidates, dtype=complex)
    radii_matrix = np.abs(pts[None, :] - centers[:, None])
    radii_matrix.sort(axis=1)
    scores = [_ring_score(row, spread) for row in radii_matrix]
    best = max(scores)
    # Tie-break toward the plain fit: on a clean single arc many centres
    # along the bisector score ~1, and an inward-biased start would
    # collapse the iteration onto a tiny circle.
    if scores[0] >= best - 0.02:
        start = candidates[0]
    else:
        start = candidates[int(np.argmax(np.array(scores)))]

    fit = None
    center = start
    prev_keep: np.ndarray | None = None
    for _ in range(iterations):
        radii = np.abs(pts - center)
        ring = dominant_radius(radii)
        keep = np.abs(radii - ring) <= band * max(ring, 1e-300)
        if keep.sum() < max(8, len(pts) // 6):
            break
        if prev_keep is not None and np.array_equal(keep, prev_keep):
            # Fixed point: the same sample set yields the same fit and
            # therefore the same gate next round — remaining iterations
            # are provably identical, so skip them.
            break
        prev_keep = keep
        fit = fit_fn(pts[keep])
        center = fit.center
    if fit is None:
        return plain
    # Accept the gated fit only if it describes the data at least as well
    # as the plain fit; otherwise the plain fit is the safer answer.
    gated_score = _ring_score(np.sort(np.abs(pts - fit.center)), spread)
    plain_score = _ring_score(np.sort(np.abs(pts - plain.center)), spread)
    if gated_score + 0.02 < plain_score:
        return plain
    return fit

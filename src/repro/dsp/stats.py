"""Robust statistics: scale estimators, running moments, empirical CDFs.

- :func:`mad_sigma` estimates the noise standard deviation used by the LEVD
  threshold ("five times the standard deviation of the signal amplitude
  without blinking"). Blinks are outliers in the amplitude signal, so a
  median-absolute-deviation estimate recovers the *blink-free* sigma without
  needing labelled blink-free segments.
- :class:`RunningStats` provides Welford-style streaming mean/variance for
  the real-time detector.
- :func:`empirical_cdf` backs the paper's CDF plots (Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["mad_sigma", "RunningStats", "empirical_cdf", "percentile_of"]

# Scale factor that makes the MAD a consistent estimator of sigma for
# Gaussian data: 1 / Phi^{-1}(3/4).
_MAD_TO_SIGMA = 1.4826022185056018


def mad_sigma(x: np.ndarray) -> float:
    """Robust sigma estimate via the median absolute deviation.

    Returns 0.0 for signals with fewer than 2 samples.
    """
    x = np.asarray(x, dtype=float).ravel()
    if x.size < 2:
        return 0.0
    med = np.median(x)
    return float(_MAD_TO_SIGMA * np.median(np.abs(x - med)))


@dataclass
class RunningStats:
    """Streaming mean/variance (Welford's algorithm).

    Numerically stable one-pass moments; used by the real-time pipeline to
    track the relative-distance signal statistics without buffering.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def push(self, value: float) -> None:
        """Incorporate one observation."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def extend(self, values: np.ndarray) -> None:
        """Incorporate a batch of observations."""
        for v in np.asarray(values, dtype=float).ravel():
            self.push(float(v))

    @property
    def variance(self) -> float:
        """Population variance (0.0 until two samples are seen)."""
        return self._m2 / self.count if self.count >= 2 else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return float(np.sqrt(self.variance))

    def reset(self) -> None:
        """Forget all observations."""
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0


def empirical_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF ``(sorted_values, probabilities)`` of ``samples``.

    Probabilities are ``k/n`` for the k-th order statistic, matching the
    staircase CDFs in the paper's Fig. 13.
    """
    values = np.sort(np.asarray(samples, dtype=float).ravel())
    if values.size == 0:
        raise ValueError("empirical_cdf requires at least one sample")
    probs = np.arange(1, values.size + 1, dtype=float) / values.size
    return values, probs


def percentile_of(samples: np.ndarray, q: float) -> float:
    """Convenience wrapper: the ``q``-th percentile (0-100) of ``samples``."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(np.asarray(samples, dtype=float), q))

"""Robust statistics: scale estimators, running moments, empirical CDFs.

- :func:`mad_sigma` estimates the noise standard deviation used by the LEVD
  threshold ("five times the standard deviation of the signal amplitude
  without blinking"). Blinks are outliers in the amplitude signal, so a
  median-absolute-deviation estimate recovers the *blink-free* sigma without
  needing labelled blink-free segments.
- :class:`RunningStats` provides Welford-style streaming mean/variance for
  the real-time detector.
- :func:`empirical_cdf` backs the paper's CDF plots (Fig. 13).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "mad_sigma",
    "RunningStats",
    "SortedWindow",
    "empirical_cdf",
    "percentile_of",
]

# Scale factor that makes the MAD a consistent estimator of sigma for
# Gaussian data: 1 / Phi^{-1}(3/4).
_MAD_TO_SIGMA = 1.4826022185056018


def mad_sigma(x: np.ndarray) -> float:
    """Robust sigma estimate via the median absolute deviation.

    Returns 0.0 for signals with fewer than 2 samples.
    """
    x = np.asarray(x, dtype=float).ravel()
    if x.size < 2:
        return 0.0
    med = np.median(x)
    return float(_MAD_TO_SIGMA * np.median(np.abs(x - med)))


@dataclass
class RunningStats:
    """Streaming mean/variance (Welford's algorithm).

    Numerically stable one-pass moments; used by the real-time pipeline to
    track the relative-distance signal statistics without buffering.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def push(self, value: float) -> None:
        """Incorporate one observation."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def extend(self, values: np.ndarray) -> None:
        """Incorporate a batch of observations."""
        for v in np.asarray(values, dtype=float).ravel():
            self.push(float(v))

    @property
    def variance(self) -> float:
        """Population variance (0.0 until two samples are seen)."""
        return self._m2 / self.count if self.count >= 2 else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return float(np.sqrt(self.variance))

    def reset(self) -> None:
        """Forget all observations."""
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0


class SortedWindow:
    """FIFO window with O(window) incremental order statistics.

    The streaming pipeline needs a median or quantile of a sliding window
    on *every frame* (movement-spike metric, LEVD detrend and sigma
    buffers). Calling ``np.median`` on a freshly materialized array costs
    a full sort per frame; this class keeps the window's values in a
    sorted list maintained by ``bisect`` — insertion and FIFO expiry are
    one ``memmove`` each — and evaluates the order statistic straight
    from the sorted list with the *exact* arithmetic numpy uses, so the
    results are bit-for-bit identical to ``np.median`` /
    ``np.quantile(method="linear")`` on the same values.

    NaNs never enter the sorted list (they have no order); a counter
    tracks how many live in the window and any statistic returns NaN
    while it is nonzero — the same poisoning ``np.median`` applies.
    """

    __slots__ = ("maxlen", "_fifo", "_sorted", "_nan_count")

    def __init__(self, maxlen: int | None = None) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._fifo: deque[float] = deque()
        self._sorted: list[float] = []
        self._nan_count = 0

    def __len__(self) -> int:
        return len(self._fifo)

    def __iter__(self) -> Iterator[float]:
        """Chronological (FIFO) iteration, oldest first."""
        return iter(self._fifo)

    def push(self, value: float) -> None:
        """Append ``value``, expiring the oldest entry at capacity."""
        value = float(value)
        if self.maxlen is not None and len(self._fifo) >= self.maxlen:
            oldest = self._fifo.popleft()
            if oldest != oldest:  # NaN
                self._nan_count -= 1
            else:
                del self._sorted[bisect_left(self._sorted, oldest)]
        self._fifo.append(value)
        if value != value:
            self._nan_count += 1
        else:
            insort(self._sorted, value)

    def clear(self) -> None:
        """Forget every entry."""
        self._fifo.clear()
        self._sorted.clear()
        self._nan_count = 0

    def to_array(self) -> np.ndarray:
        """The window in chronological order as a float array."""
        return np.array(self._fifo, dtype=float)

    def median(self) -> float:
        """``np.median`` of the window, from the sorted list."""
        n = len(self._fifo)
        if n == 0:
            raise ValueError("median of an empty window")
        if self._nan_count:
            return float("nan")
        s = self._sorted
        half = n >> 1
        if n & 1:
            return s[half]
        return (s[half - 1] + s[half]) * 0.5

    def quantile(self, q: float) -> float:
        """``np.quantile(..., method="linear")`` of the window.

        Reproduces numpy's two-sided lerp exactly: the interpolation is
        evaluated from whichever bracketing order statistic is nearer,
        which matters in the last float ulp.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        n = len(self._fifo)
        if n == 0:
            raise ValueError("quantile of an empty window")
        if self._nan_count:
            return float("nan")
        s = self._sorted
        virt = q * (n - 1)
        j = int(virt)
        if j >= n - 1:
            return s[n - 1]
        g = virt - j
        a = s[j]
        b = s[j + 1]
        diff = b - a
        if g >= 0.5:
            return b - diff * (1.0 - g)
        return a + diff * g


def empirical_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF ``(sorted_values, probabilities)`` of ``samples``.

    Probabilities are ``k/n`` for the k-th order statistic, matching the
    staircase CDFs in the paper's Fig. 13.
    """
    values = np.sort(np.asarray(samples, dtype=float).ravel())
    if values.size == 0:
        raise ValueError("empirical_cdf requires at least one sample")
    probs = np.arange(1, values.size + 1, dtype=float) / values.size
    return values, probs


def percentile_of(samples: np.ndarray, q: float) -> float:
    """Convenience wrapper: the ``q``-th percentile (0-100) of ``samples``."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(np.asarray(samples, dtype=float), q))

"""Local-extrema utilities.

These primitives underlie BlinkRadar's Local Extreme Value Detection (LEVD,
Sec. IV-E): "find alternative local maxima and minima and compare the
difference between two nearby local maxima and minima with a predefined
threshold". :func:`alternating_extrema` produces exactly that alternating
max/min sequence; the thresholding lives in :mod:`repro.core.levd`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Extremum", "local_maxima", "local_minima", "alternating_extrema"]


@dataclass(frozen=True)
class Extremum:
    """A local extremum of a 1-D signal.

    Attributes
    ----------
    index:
        Sample index of the extremum.
    value:
        Signal value at the extremum.
    kind:
        ``"max"`` or ``"min"``.
    """

    index: int
    value: float
    kind: str


def local_maxima(x: np.ndarray, min_distance: int = 1) -> np.ndarray:
    """Indices of local maxima of ``x``, plateau-aware.

    A maximum is a sample strictly above its neighbours, or the centre of a
    flat plateau whose edges both descend. ``min_distance`` enforces a
    minimum index spacing: when two maxima are closer, the larger one wins.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError("local_maxima expects a 1-D signal")
    if len(x) < 3:
        return np.array([], dtype=int)
    # Candidate samples: >= both neighbours (includes every plateau point).
    cand = np.flatnonzero((x[1:-1] >= x[:-2]) & (x[1:-1] >= x[2:])) + 1
    if cand.size == 0:
        return cand
    # Collapse consecutive candidates into runs; a run [s..e] is a maximum
    # only if the signal descends on both sides of the run. All runs are
    # tested with one vectorized gather — no Python loop over plateaus.
    breaks = np.flatnonzero(np.diff(cand) > 1)
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks, [cand.size - 1]])
    lo = cand[starts]
    hi = cand[ends]
    descends = (x[lo - 1] < x[lo]) & (x[hi + 1] < x[hi])
    candidates = ((lo + hi) // 2)[descends]
    return _enforce_distance(candidates, x, min_distance, keep_largest=True)


def local_minima(x: np.ndarray, min_distance: int = 1) -> np.ndarray:
    """Indices of local minima of ``x`` (see :func:`local_maxima`)."""
    return local_maxima(-np.asarray(x, dtype=float), min_distance=min_distance)


def _enforce_distance(
    candidates: np.ndarray, x: np.ndarray, min_distance: int, keep_largest: bool
) -> np.ndarray:
    """Greedy non-maximum suppression of extrema closer than ``min_distance``."""
    if min_distance <= 1 or candidates.size <= 1:
        return candidates
    order = np.argsort(x[candidates])
    if keep_largest:
        order = order[::-1]
    keep: list[int] = []
    taken = np.zeros(len(x), dtype=bool)
    for pos in candidates[order]:
        lo, hi = max(0, pos - min_distance + 1), min(len(x), pos + min_distance)
        if not taken[lo:hi].any():
            keep.append(int(pos))
            taken[pos] = True
    return np.array(sorted(keep), dtype=int)


def alternating_extrema(x: np.ndarray, min_distance: int = 1) -> list[Extremum]:
    """Strictly alternating sequence of local maxima and minima.

    Merges the maxima and minima of ``x`` into one index-ordered list and
    collapses runs of same-kind extrema to the most extreme one, so the
    result alternates max, min, max, ... (starting with whichever comes
    first). This is the "alternative local maxima and minima" sequence the
    LEVD step of the paper compares pairwise.
    """
    x = np.asarray(x, dtype=float)
    maxima = [Extremum(int(i), float(x[i]), "max") for i in local_maxima(x, min_distance)]
    minima = [Extremum(int(i), float(x[i]), "min") for i in local_minima(x, min_distance)]
    merged = sorted(maxima + minima, key=lambda e: e.index)
    out: list[Extremum] = []
    for ext in merged:
        if out and out[-1].kind == ext.kind:
            # Same kind twice in a row: keep the more extreme one.
            better = (
                ext.value > out[-1].value if ext.kind == "max" else ext.value < out[-1].value
            )
            if better:
                out[-1] = ext
        else:
            out.append(ext)
    return out

"""Sliding- and hopping-window iteration over slow-time signals.

BlinkRadar's real-time loop operates on windows of slow-time samples: arc
fitting over the trailing window, LEVD over a sliding window, and the
drowsiness classifier over hopping 1-minute windows. These helpers keep the
indexing in one audited place.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["sliding_windows", "hopping_windows", "window_starts"]


def window_starts(n: int, window: int, hop: int) -> np.ndarray:
    """Start indices of full windows of length ``window`` with stride ``hop``."""
    if window < 1 or hop < 1:
        raise ValueError("window and hop must be >= 1")
    if n < window:
        return np.array([], dtype=int)
    return np.arange(0, n - window + 1, hop)


def sliding_windows(x: np.ndarray, window: int) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(start, view)`` for every full window with stride 1.

    Views are read-only slices of the input (no copy).
    """
    yield from hopping_windows(x, window, hop=1)


def hopping_windows(x: np.ndarray, window: int, hop: int) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(start, view)`` for every full window with stride ``hop``."""
    x = np.asarray(x)
    for start in window_starts(x.shape[0], window, hop):
        yield int(start), x[start : start + window]

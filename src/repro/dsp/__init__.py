"""Generic digital-signal-processing substrate for BlinkRadar.

This subpackage is self-contained (depends only on numpy) and provides the
signal-processing primitives that both the radar simulator and the
BlinkRadar detection pipeline are built from:

- :mod:`repro.dsp.filters` — window-method FIR design, smoothing, the
  cascading noise-reduction filter of the paper (Sec. IV-B-1), and the
  loopback clutter filter used for background subtraction.
- :mod:`repro.dsp.circlefit` — algebraic circle fits (Kåsa, Pratt, Taubin);
  the paper uses the Pratt method for arc fitting (Sec. IV-E).
- :mod:`repro.dsp.peaks` — local-extrema utilities underlying the local
  extreme value detection (LEVD) blink detector.
- :mod:`repro.dsp.spectral` — FFT helpers, power spectra and range-time maps.
- :mod:`repro.dsp.windows` — sliding/hopping window iteration over slow time.
- :mod:`repro.dsp.stats` — robust scale estimators, running statistics and
  empirical CDFs.
"""

from repro.dsp.circlefit import CircleFit, fit_circle_kasa, fit_circle_pratt, fit_circle_taubin
from repro.dsp.filters import (
    CascadingFilter,
    LoopbackFilter,
    design_lowpass_fir,
    fir_filter,
    moving_average,
    smooth,
)
from repro.dsp.peaks import alternating_extrema, local_maxima, local_minima
from repro.dsp.spectral import amplitude_spectrum, power_spectrum, range_time_map
from repro.dsp.stats import empirical_cdf, mad_sigma, RunningStats
from repro.dsp.windows import hopping_windows, sliding_windows

__all__ = [
    "CircleFit",
    "fit_circle_kasa",
    "fit_circle_pratt",
    "fit_circle_taubin",
    "CascadingFilter",
    "LoopbackFilter",
    "design_lowpass_fir",
    "fir_filter",
    "moving_average",
    "smooth",
    "alternating_extrema",
    "local_maxima",
    "local_minima",
    "amplitude_spectrum",
    "power_spectrum",
    "range_time_map",
    "empirical_cdf",
    "mad_sigma",
    "RunningStats",
    "hopping_windows",
    "sliding_windows",
]

"""FIR/IIR filtering primitives.

Implements the two preprocessing filters of BlinkRadar Sec. IV-B:

1. *Noise reduction* — a cascading filter made of an order-26 low-pass FIR
   filter designed with a Hamming window, followed by a 50-point smoothing
   (moving-average) filter (:class:`CascadingFilter`).
2. *Background subtraction* — a "loopback filter" that tracks the static
   (clutter) component of each range bin with an exponential recursion and
   subtracts it (:class:`LoopbackFilter`).

All functions operate on numpy arrays and accept complex input: the radar
frames BlinkRadar processes are complex baseband samples, and filtering the
I and Q components jointly (as one complex sequence) is exactly filtering
each component with the same real taps.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import as_strided

__all__ = [
    "design_lowpass_fir",
    "fir_filter",
    "fir_filter_rows",
    "FilterScratch",
    "moving_average",
    "smooth",
    "CascadingFilter",
    "LoopbackFilter",
]


def design_lowpass_fir(order: int, cutoff: float, window: str = "hamming") -> np.ndarray:
    """Design a linear-phase low-pass FIR filter by the window method.

    Parameters
    ----------
    order:
        Filter order ``N``; the filter has ``N + 1`` taps. The paper uses
        ``order=26``.
    cutoff:
        Normalised cutoff frequency in cycles/sample, ``0 < cutoff < 0.5``
        (i.e. a fraction of the sampling rate, Nyquist = 0.5).
    window:
        Taper applied to the ideal sinc response. One of ``"hamming"``,
        ``"hann"``, ``"blackman"`` or ``"rect"``.

    Returns
    -------
    numpy.ndarray
        ``order + 1`` real taps normalised to unit DC gain.
    """
    if order < 1:
        raise ValueError(f"FIR order must be >= 1, got {order}")
    if not 0.0 < cutoff < 0.5:
        raise ValueError(f"cutoff must be in (0, 0.5) cycles/sample, got {cutoff}")
    n = np.arange(order + 1, dtype=float)
    centre = order / 2.0
    # Ideal low-pass impulse response: 2*fc*sinc(2*fc*(n - centre)).
    taps = 2.0 * cutoff * np.sinc(2.0 * cutoff * (n - centre))
    taps *= _window_taper(window, order + 1)
    dc_gain = taps.sum()
    if abs(dc_gain) < 1e-12:
        raise ValueError("degenerate FIR design: zero DC gain")
    return taps / dc_gain


def _window_taper(name: str, length: int) -> np.ndarray:
    """Return a window taper of ``length`` points by name."""
    name = name.lower()
    if name == "hamming":
        return np.hamming(length)
    if name == "hann":
        return np.hanning(length)
    if name == "blackman":
        return np.blackman(length)
    if name == "rect":
        return np.ones(length)
    raise ValueError(f"unknown window {name!r}; expected hamming/hann/blackman/rect")


def _filt1d(v: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Reference scalar path: reflect-pad one vector and convolve.

    Kept for signals too short for single-slice reflection (``len(v)`` not
    exceeding the pad width); the fused row path reproduces this function
    bit for bit on everything longer.
    """
    pad = len(taps) // 2
    if len(v) == 1:
        # Reflection is undefined for a single sample; DC gain applies.
        return v * taps.sum()
    left = v[1 : pad + 1][::-1] if pad else v[:0]
    right = v[-pad - 1 : -1][::-1] if pad else v[:0]
    # Short signals may need repeated reflection to fill the pad.
    while len(left) < pad:
        left = np.concatenate([v[::-1][: pad - len(left)], left])
    while len(right) < pad:
        right = np.concatenate([right, v[::-1][: pad - len(right)]])
    padded = np.concatenate([left, v, right])
    return np.convolve(padded, taps, mode="valid")[: len(v)]


class FilterScratch:
    """Reusable padded-signal buffers for :func:`fir_filter_rows`.

    One instance per pipeline session: the padded block for each
    ``(rows, length, pad, dtype)`` geometry is allocated once and reused
    on every later hop, so steady-state filtering performs no Python-level
    allocations. Buffers grow monotonically (a larger row count reuses the
    prefix of an existing buffer, a smaller one never shrinks it).
    """

    def __init__(self) -> None:
        self._padded: dict[tuple[int, str], np.ndarray] = {}

    def padded(self, n_rows: int, width: int, dtype: np.dtype) -> np.ndarray:  # reprolint: shape(return=(n_rows,width))
        """A ``(n_rows, width)`` scratch block of ``dtype`` (contents stale)."""
        key = (width, np.dtype(dtype).str)
        buf = self._padded.get(key)
        if buf is None or buf.shape[0] < n_rows:
            buf = np.empty((n_rows, width), dtype=dtype)
            self._padded[key] = buf
        return buf[:n_rows]


#: Upper bound on a padded chunk, in elements. Large blocks are filtered
#: chunk by chunk so the padded scratch, the convolution output and the
#: destination rows all stay cache-resident; one monolithic pass over a
#: multi-session block streams every intermediate through DRAM and runs
#: several times slower (measured on (12000, 110) complex rows).
_CHUNK_ELEMS = 1 << 17


def fir_filter_rows(  # reprolint: hotpath
    rows: np.ndarray,
    taps: np.ndarray,
    scratch: FilterScratch,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Filter every row of a 2-D block with fused convolutions.

    Bit-for-bit equivalent to running :func:`_filt1d` over each row, but
    the reflect-padded rows are laid out back to back and convolved as a
    single 1-D sequence; each row's outputs are then sliced back out with
    stride tricks. Valid-mode windows that straddle two adjacent rows are
    simply discarded by the restriding, so row independence is preserved
    exactly — every retained inner product sees one row's samples only,
    in the same order as the scalar path. Row independence also makes the
    cache-sized chunking below exact: each chunk is just a smaller block.

    ``out`` optionally receives the result (shape ``rows.shape``, result
    dtype); a fresh array is allocated when omitted.

    Rows must be longer than the pad width (``len(taps) // 2``); shorter
    blocks take the repeated-reflection scalar path in :func:`fir_filter`.

    Shape:
        rows: (N, R)
        taps: (T,)
        out: (N, R)
        return: (N, R)
    """
    n, length = rows.shape
    pad = len(taps) // 2
    width = length + 2 * pad
    out_dtype = np.result_type(rows.dtype, taps.dtype)
    if out is None:
        # Result buffer, only when the caller brings none of their own.
        out = np.empty((n, length), dtype=out_dtype)  # reprolint: disable=hotpath-alloc
    chunk = max(1, _CHUNK_ELEMS // width)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        sub = rows[start:stop]
        m = stop - start
        padded = scratch.padded(m, width, out_dtype)
        padded[:, pad : pad + length] = sub
        if pad:
            padded[:, :pad] = sub[:, 1 : pad + 1][:, ::-1]
            padded[:, pad + length :] = sub[:, -pad - 1 : -1][:, ::-1]
        conv = np.convolve(padded.reshape(-1), taps, mode="valid")
        view = as_strided(
            conv,
            shape=(m, length),
            strides=(width * conv.itemsize, conv.itemsize),
        )
        out[start:stop] = view
    return out


def fir_filter(x: np.ndarray, taps: np.ndarray, axis: int = -1) -> np.ndarray:
    """Apply an FIR filter with group-delay compensation ("same" alignment).

    The output has the same shape as the input; the linear-phase group delay
    of ``len(taps)//2`` samples is removed so features stay aligned with the
    raw signal (required so that detected blink times match ground truth).
    Edges are handled by reflecting the signal, which avoids the large
    start-up transient of zero padding.

    Blocks whose filtered axis is longer than the pad width run through the
    fused row kernel (:func:`fir_filter_rows`) — one convolution for the
    whole block regardless of how many rows it has.
    """
    x = np.asarray(x)
    taps = np.asarray(taps, dtype=float)
    if taps.ndim != 1 or taps.size == 0:
        raise ValueError("taps must be a non-empty 1-D array")
    if x.shape[axis] == 0:
        return x.copy()

    pad = len(taps) // 2
    length = x.shape[axis]
    if length > pad and length > 1:
        moved = np.moveaxis(x, axis, -1)
        rows = np.ascontiguousarray(moved.reshape(-1, length))
        out = fir_filter_rows(rows, taps, _module_scratch())
        return np.moveaxis(out.reshape(moved.shape), -1, axis)
    return np.apply_along_axis(_filt1d, axis, x, taps)


_SCRATCH = threading.local()


def _module_scratch() -> FilterScratch:
    """Per-thread scratch for the convenience ``fir_filter`` API.

    Sessions on the hot path thread their own :class:`FilterScratch`
    through :func:`fir_filter_rows`; this pool serves ad-hoc calls
    (binselect profiles, offline analysis). It is thread-local because
    fleet worker threads reach :func:`fir_filter` concurrently and the
    padded buffers must never be shared across threads mid-write.
    """
    pool = getattr(_SCRATCH, "pool", None)
    if pool is None:
        pool = FilterScratch()
        _SCRATCH.pool = pool
    return pool


def moving_average(x: np.ndarray, window: int, axis: int = -1) -> np.ndarray:
    """Centred moving-average smoother with reflected edges.

    ``window`` is the number of points averaged (the paper's smoothing
    filter uses 50). Output shape equals input shape.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    taps = np.ones(window) / window
    return fir_filter(x, taps, axis=axis)


def smooth(x: np.ndarray, window: int = 50, axis: int = -1) -> np.ndarray:
    """Alias of :func:`moving_average` with the paper's default window."""
    return moving_average(x, window, axis=axis)


@dataclass
class CascadingFilter:
    """The paper's noise-reduction cascade (Sec. IV-B-1).

    An order-``fir_order`` low-pass FIR filter (Hamming window) followed by a
    ``smooth_window``-point moving-average smoother. Defaults follow the
    paper: order 26, Hamming, 50-point smoother.

    The cutoff defaults to 0.1 cycles/sample: at the simulator's fast-time
    sampling this keeps the pulse envelope while suppressing wideband
    thermal noise, and at slow time (25 FPS) it keeps everything below
    2.5 Hz — blinks (sub-second transients) and physiological motion —
    while rejecting vibration hash.
    """

    fir_order: int = 26
    cutoff: float = 0.1
    window: str = "hamming"
    smooth_window: int = 50
    taps: np.ndarray = field(init=False, repr=False)
    smooth_taps: np.ndarray = field(init=False, repr=False)
    composite_taps: np.ndarray = field(init=False, repr=False)
    _scratch: FilterScratch = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.taps = design_lowpass_fir(self.fir_order, self.cutoff, self.window)
        self.smooth_taps = np.ones(self.smooth_window) / self.smooth_window
        # Single fused kernel equivalent to FIR-then-smooth on the signal
        # interior (convolution is associative). The two-pass path below
        # stays the executable truth because the cascade reflect-pads the
        # *intermediate* signal, which a one-pass kernel cannot reproduce
        # bit for bit near the edges; the fused kernel is exported for
        # callers that want one-pass filtering and for the equivalence
        # test that documents how close the two are.
        self.composite_taps = np.convolve(self.taps, self.smooth_taps)
        self._scratch = FilterScratch()

    def apply(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Run the cascade along ``axis`` and return the smoothed signal."""
        x = np.asarray(x)
        length = x.shape[axis]
        pad = max(len(self.taps) // 2, len(self.smooth_taps) // 2)
        if length > pad and length > 1:
            moved = np.moveaxis(x, axis, -1)
            rows = np.ascontiguousarray(moved.reshape(-1, length))
            out = self.apply_rows(rows)
            return np.moveaxis(out.reshape(moved.shape), -1, axis)
        y = fir_filter(x, self.taps, axis=axis)
        return moving_average(y, self.smooth_window, axis=axis)

    def apply_rows(self, rows: np.ndarray) -> np.ndarray:  # reprolint: hotpath
        """Cascade every row of a 2-D block.

        Two fused convolutions per cache-sized chunk of rows — the
        stage-1 output of a chunk is consumed by stage 2 while still
        cache-resident, reusing this filter's scratch buffers throughout.
        This is the batched-pipeline entry point: an ``(S·T, R)`` block of
        S sessions' frames runs through the same two kernels regardless
        of S, and rows are filtered independently, so chunk boundaries
        (and session boundaries) cannot change a single bit.

        Shape:
            rows: (N, R)
            return: (N, R)
        """
        n, length = rows.shape
        out_dtype = np.result_type(rows.dtype, self.taps.dtype)
        # Result buffer; both cascade stages write into scratch or here.
        out = np.empty((n, length), dtype=out_dtype)  # reprolint: disable=hotpath-alloc
        chunk = max(1, _CHUNK_ELEMS // max(length, 1))
        scratch = self._scratch
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            y = scratch.padded(stop - start, length, out_dtype)
            fir_filter_rows(rows[start:stop], self.taps, scratch, out=y)
            fir_filter_rows(y, self.smooth_taps, scratch, out=out[start:stop])
        return out

    __call__ = apply


@dataclass
class LoopbackFilter:
    """Exponential clutter tracker used for background subtraction.

    Tracks the static component ``b_k`` of each range bin with the
    recursion ``b_k = alpha * b_{k-1} + (1 - alpha) * f_k`` and outputs the
    clutter-free residue ``f_k - b_{k-1}``. Subtracting the *previous*
    estimate (not the updated one) avoids cancelling the very motion we are
    trying to keep, matching the paper's "remove ... from the FFT scan of
    the signal in the previous scan".

    Parameters
    ----------
    alpha:
        Clutter memory in (0, 1). Large alpha = slow clutter adaptation.
        At 25 FPS, ``alpha = 0.98`` gives a time constant of ~2 s,
        comfortably slower than any blink.
    """

    alpha: float = 0.98
    _background: np.ndarray | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")

    @property
    def background(self) -> np.ndarray | None:
        """Current clutter estimate (None before the first frame)."""
        return self._background

    def reset(self) -> None:
        """Forget the clutter estimate (e.g. after a large body movement)."""
        self._background = None

    def push(self, frame: np.ndarray) -> np.ndarray:  # reprolint: shape(frame=(R,)) shape(return=(R,))
        """Feed one frame; return the background-subtracted frame."""
        frame = np.asarray(frame)
        if self._background is None:
            self._background = frame.astype(np.result_type(frame, float)).copy()
            return np.zeros_like(self._background)
        if frame.shape != self._background.shape:
            raise ValueError(
                f"frame shape {frame.shape} != background shape {self._background.shape}"
            )
        residue = frame - self._background
        self._background = self.alpha * self._background + (1.0 - self.alpha) * frame
        return residue

    def apply(self, frames: np.ndarray) -> np.ndarray:
        """Vectorised batch version of :meth:`push` over axis 0.

        Equivalent to pushing each frame in order, but implemented with the
        closed-form exponential recursion for speed.
        """
        frames = np.asarray(frames)
        if frames.ndim < 1 or frames.shape[0] == 0:
            return frames.copy()
        out = np.empty_like(frames, dtype=np.result_type(frames, float))
        background = (
            frames[0].astype(out.dtype).copy()
            if self._background is None
            else self._background.copy()
        )
        start = 0
        if self._background is None:
            out[0] = 0.0
            start = 1
        for k in range(start, frames.shape[0]):
            out[k] = frames[k] - background
            background = self.alpha * background + (1.0 - self.alpha) * frames[k]
        self._background = background
        return out

"""Respiratory chest-wall motion.

Breathing is the largest physiological motion in the cabin and one of the
paper's two named biosignal interferers (Sec. IV-D). It matters twice:

1. as *interference* — the chest is a big reflector a few range bins behind
   the face, and respiration-coupled shoulder/head sway leaks a small
   periodic displacement into the eye's own range bin;
2. as a *feature* — BlinkRadar deliberately exploits the persistent
   respiration/BCG disturbance at the eye bin to find the right range bin
   quickly ("the first time we have exploited 'harmful' embedded
   interference", Sec. IV-D).

The model is a frequency-wandering sinusoid with a second harmonic
(inhale/exhale asymmetry) and cycle-to-cycle amplitude variability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RespirationModel"]


@dataclass(frozen=True)
class RespirationModel:
    """Chest displacement generator.

    Attributes
    ----------
    rate_hz:
        Mean breathing rate. 0.25 Hz = 15 breaths/min.
    amplitude_m:
        Peak chest-wall displacement. 5 mm — the figure the paper quotes
        for respiratory monitoring ("chest displacement of about 5 mm").
    harmonic_ratio:
        Relative amplitude of the second harmonic shaping the asymmetric
        inhale/exhale.
    rate_jitter_frac:
        Fractional std of the slowly wandering instantaneous rate.
    head_coupling:
        Fraction of chest displacement that appears as head/shoulder sway
        (the component that lands in the eye's range bin). A seated torso
        pivots at the hips, so the head sways by a substantial fraction of
        the chest excursion (~2.5 mm peak here); this persistent sway is what
        makes the eye bin's I/Q trajectory a resolvable arc — the
        "embedded interference" BlinkRadar deliberately exploits.
    """

    rate_hz: float = 0.25
    amplitude_m: float = 5.0e-3
    harmonic_ratio: float = 0.25
    rate_jitter_frac: float = 0.08
    head_coupling: float = 0.5

    def __post_init__(self) -> None:
        if self.rate_hz <= 0 or self.amplitude_m <= 0:
            raise ValueError("rate and amplitude must be positive")
        if not 0 <= self.harmonic_ratio <= 1 or not 0 <= self.head_coupling <= 1:
            raise ValueError("harmonic_ratio and head_coupling must be in [0, 1]")
        if self.rate_jitter_frac < 0:
            raise ValueError("rate_jitter_frac must be >= 0")

    def displacement(
        self, n_frames: int, frame_rate_hz: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Chest displacement track (m) on the slow-time grid.

        The instantaneous frequency performs a bounded random walk around
        ``rate_hz`` so cycles drift like real breathing instead of being a
        pure tone.
        """
        if n_frames < 1 or frame_rate_hz <= 0:
            raise ValueError("n_frames must be >= 1 and frame_rate_hz positive")
        dt = 1.0 / frame_rate_hz
        # Smooth random walk of the instantaneous rate, clipped to stay
        # physiological.
        steps = rng.normal(scale=self.rate_jitter_frac * self.rate_hz * np.sqrt(dt), size=n_frames)
        inst_rate = np.clip(
            self.rate_hz + np.cumsum(steps) * 0.15, 0.6 * self.rate_hz, 1.6 * self.rate_hz
        )
        phase = 2.0 * np.pi * np.cumsum(inst_rate) * dt
        # Cycle-scale amplitude variability (slowly varying envelope).
        envelope = 1.0 + 0.15 * np.sin(
            2.0 * np.pi * rng.uniform(0.01, 0.03) * np.arange(n_frames) * dt
            + rng.uniform(0, 2 * np.pi)
        )
        fundamental = np.sin(phase)
        harmonic = self.harmonic_ratio * np.sin(2.0 * phase + rng.uniform(0, 2 * np.pi))
        return self.amplitude_m * envelope * (fundamental + harmonic) / (1 + self.harmonic_ratio)

    def head_displacement(self, chest_displacement_m: np.ndarray) -> np.ndarray:
        """Respiration-coupled head sway derived from a chest track (m)."""
        return self.head_coupling * np.asarray(chest_displacement_m, dtype=float)

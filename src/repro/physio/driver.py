"""Driver composition: participant profiles and the full motion bundle.

:class:`DriverModel` assembles every physiological process into the
displacement/closure tracks that the radar channel needs. The split matters
for fidelity:

- the **eye path** sees head motion (BCG + respiration coupling + micro
  tremor + posture) *plus* the blink: an amplitude modulation (eyelid skin
  vs eyeball reflectivity) and a sub-millimetre path-length change (the
  eyelid surface sits slightly proud of the cornea);
- the **face path** (forehead/cheeks, same range bin neighbourhood) sees
  head motion only — it is the persistent "harmful" disturbance that makes
  the eye bin's I/Q trajectory arc-shaped even between blinks (Sec. IV-D);
- the **torso path** sees respiration and posture, a few bins further out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.physio.blink import BlinkEvent, BlinkKinematics, BlinkProcess, BlinkStatistics
from repro.physio.body import MicroMotion, PostureShiftProcess
from repro.physio.cardiac import CardiacModel
from repro.physio.respiration import RespirationModel

__all__ = ["EyeGeometry", "ParticipantProfile", "DriverMotion", "DriverModel"]

#: Effective radial travel of the reflecting surface during a full eyelid
#: closure (eyelid + lash line sit ~1 mm proud of the tear film).
EYELID_PROTRUSION_M = 0.9e-3


@dataclass(frozen=True)
class EyeGeometry:
    """Exposed eye-opening geometry.

    Attributes
    ----------
    width_m / height_m:
        Palpebral fissure dimensions. The paper's smallest participant is
        3.5 × 0.8 cm (Fig. 16(c)); a typical adult is ~4.2 × 1.1 cm.
    """

    width_m: float = 0.042
    height_m: float = 0.011

    def __post_init__(self) -> None:
        if not 0.01 <= self.width_m <= 0.08:
            raise ValueError(f"eye width {self.width_m} m outside plausible range")
        if not 0.004 <= self.height_m <= 0.03:
            raise ValueError(f"eye height {self.height_m} m outside plausible range")

    @property
    def area_m2(self) -> float:
        """Exposed eye area (both eyes): elliptical aperture × 2."""
        return 2.0 * np.pi * (self.width_m / 2.0) * (self.height_m / 2.0)

    @property
    def rcs_m2(self) -> float:
        """Effective radar cross-section of the blink-modulated region.

        A blink does not modulate just the corneal aperture: the eyelids,
        lash line and periorbital skin all move and change reflectivity, so
        the effective cross-section is of order the palpebral area itself
        (shape factor ~1). This still leaves the eye return 20–30 dB below
        the torso, matching the paper's "magnitude of eye reflections may
        be weaker than reflections from other surrounding objects".
        """
        return 1.0 * self.area_m2


@dataclass(frozen=True)
class ParticipantProfile:
    """Everything participant-specific the simulator needs.

    Attributes
    ----------
    name:
        Identifier ("P01" ...).
    eye:
        Eye-opening geometry (drives RCS, Fig. 16(c)).
    glasses:
        ``"none"``, ``"myopia"`` or ``"sunglasses"`` (Fig. 16(a)).
    awake / drowsy:
        Blink statistics in each state (Table I spread comes from
        participant-to-participant variation of these).
    respiration / cardiac:
        Vital-sign model parameters.
    restlessness:
        Scale on the posture-shift rate (1 = average).
    """

    name: str
    eye: EyeGeometry = field(default_factory=EyeGeometry)
    glasses: str = "none"
    awake: BlinkStatistics = field(default_factory=BlinkStatistics.awake)
    drowsy: BlinkStatistics = field(default_factory=BlinkStatistics.drowsy)
    respiration: RespirationModel = field(default_factory=RespirationModel)
    cardiac: CardiacModel = field(default_factory=CardiacModel)
    restlessness: float = 1.0

    def __post_init__(self) -> None:
        if self.glasses not in ("none", "myopia", "sunglasses"):
            raise ValueError(f"unknown glasses type {self.glasses!r}")
        if self.restlessness <= 0:
            raise ValueError("restlessness must be positive")

    def blink_stats(self, state: str) -> BlinkStatistics:
        """Blink statistics for ``state`` ('awake' or 'drowsy')."""
        if state == "awake":
            return self.awake
        if state == "drowsy":
            return self.drowsy
        raise ValueError(f"unknown driver state {state!r}; expected 'awake' or 'drowsy'")


@dataclass(frozen=True)
class DriverMotion:
    """Per-frame motion bundle produced by :class:`DriverModel`.

    All displacement tracks are radial metres (positive = away from the
    radar) on the slow-time grid.

    Attributes
    ----------
    eyelid_closure:
        c(t) ∈ [0, 1]; 1 = fully closed.
    blink_reflectivity_weight:
        Per-event-weighted closure track Σ_e v_e · c_e(t): each blink's
        radar-visible strength varies (gaze direction, partial blinks,
        squint), modelled by a log-normal per-event factor v_e. This is the
        track that modulates the eye path's amplitude; the kinematic
        ``eyelid_closure`` drives displacement and ground truth.
    head_displacement:
        Head/face radial motion: BCG + respiration coupling + micro tremor
        + posture.
    eye_extra_displacement:
        Additional radial motion of the eye reflection due to the eyelid
        travelling over the eyeball (``−EYELID_PROTRUSION_M × c(t)``:
        closing brings the reflecting surface slightly closer).
    chest_displacement:
        Torso radial motion: respiration + posture.
    blink_events:
        Ground-truth blink events.
    posture_shift_times_s:
        Times of the large posture shifts (for restart-logic tests).
    """

    eyelid_closure: np.ndarray
    blink_reflectivity_weight: np.ndarray
    head_displacement: np.ndarray
    eye_extra_displacement: np.ndarray
    chest_displacement: np.ndarray
    blink_events: list[BlinkEvent]
    posture_shift_times_s: list[float]

    @property
    def n_frames(self) -> int:
        """Number of slow-time frames covered by the tracks."""
        return len(self.eyelid_closure)


@dataclass(frozen=True)
class DriverModel:
    """Compose all physiological processes for one participant."""

    profile: ParticipantProfile
    kinematics: BlinkKinematics = field(default_factory=BlinkKinematics)
    micro: MicroMotion = field(default_factory=MicroMotion)
    #: Log-normal sigma of the per-blink radar-visible strength factor.
    blink_gain_sigma: float = 0.35

    def posture_process(self) -> PostureShiftProcess:
        """Posture-shift process scaled by the participant's restlessness."""
        base = PostureShiftProcess()
        return PostureShiftProcess(
            mean_interval_s=base.mean_interval_s / self.profile.restlessness,
            amplitude_m=base.amplitude_m,
            transition_s=base.transition_s,
        )

    def generate(
        self,
        n_frames: int,
        frame_rate_hz: float,
        state: str,
        rng: np.random.Generator,
        allow_posture_shifts: bool = True,
    ) -> DriverMotion:
        """Draw one realisation of the driver's motion over ``n_frames``.

        ``state`` is ``"awake"`` or ``"drowsy"``; ``allow_posture_shifts``
        can be disabled for controlled micro-benchmarks (e.g. the I/Q
        signature figures).
        """
        if n_frames < 1 or frame_rate_hz <= 0:
            raise ValueError("n_frames must be >= 1 and frame_rate_hz positive")
        duration_s = n_frames / frame_rate_hz
        profile = self.profile

        blink_process = BlinkProcess(profile.blink_stats(state))
        events = blink_process.sample_events(duration_s, rng)
        closure = self.kinematics.closure_track(events, n_frames, frame_rate_hz)

        t = np.arange(n_frames) / frame_rate_hz
        weighted = np.zeros(n_frames)
        for event in events:
            gain = float(rng.lognormal(0.0, self.blink_gain_sigma))
            weighted += gain * self.kinematics.closure_at(t, event)

        chest_resp = profile.respiration.displacement(n_frames, frame_rate_hz, rng)
        head_resp = profile.respiration.head_displacement(chest_resp)
        head_bcg = profile.cardiac.head_displacement(n_frames, frame_rate_hz, rng)
        head_micro = self.micro.displacement(n_frames, frame_rate_hz, rng)

        if allow_posture_shifts:
            posture, shift_times = self.posture_process().displacement(
                n_frames, frame_rate_hz, rng
            )
        else:
            posture, shift_times = np.zeros(n_frames), []

        return DriverMotion(
            eyelid_closure=closure,
            blink_reflectivity_weight=weighted,
            head_displacement=head_resp + head_bcg + head_micro + posture,
            eye_extra_displacement=-EYELID_PROTRUSION_M * closure,
            chest_displacement=chest_resp + posture,
            blink_events=events,
            posture_shift_times_s=shift_times,
        )

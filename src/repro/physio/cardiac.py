"""Cardiac activity and ballistocardiographic head motion.

Sec. IV-D: "there is an approximate 1 mm head movement synchronized with
the heartbeat due to blood pumping, which is called Ballistic Cardiography
(BCG). This involuntary movement is aliased with blinking information."

The BCG head displacement is modelled as a per-beat pulse (sharp systolic
stroke plus a smaller rebound) repeated at a wandering heart rate. Crucially
for BlinkRadar, this motion is a nearly pure *displacement* of the head —
it rotates the eye bin's I/Q phasor along an arc without changing its
amplitude (Fig. 10(a)), which is exactly what the arc-fitting viewing
position exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CardiacModel"]


@dataclass(frozen=True)
class CardiacModel:
    """Heartbeat process and BCG head displacement.

    Attributes
    ----------
    rate_hz:
        Mean heart rate; 1.15 Hz = 69 bpm.
    bcg_amplitude_m:
        Peak head displacement per beat (~1 mm per the paper).
    rate_jitter_frac:
        Beat-to-beat fractional variability of the RR interval.
    """

    rate_hz: float = 1.15
    bcg_amplitude_m: float = 1.0e-3
    rate_jitter_frac: float = 0.05

    def __post_init__(self) -> None:
        if self.rate_hz <= 0 or self.bcg_amplitude_m <= 0:
            raise ValueError("rate and amplitude must be positive")
        if self.rate_jitter_frac < 0:
            raise ValueError("rate_jitter_frac must be >= 0")

    def beat_times(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        """Beat onset times (s) over ``[0, duration_s)`` with HRV jitter."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        mean_rr = 1.0 / self.rate_hz
        times = []
        t = float(rng.uniform(0, mean_rr))
        while t < duration_s:
            times.append(t)
            rr = mean_rr * float(np.exp(rng.normal(0.0, self.rate_jitter_frac)))
            t += max(rr, 0.3)  # hard floor: 200 bpm
        return np.array(times)

    @staticmethod
    def _beat_pulse(rel: np.ndarray) -> np.ndarray:
        """Normalised BCG displacement of one beat vs relative time in beats.

        A positive systolic lobe (~120 ms) followed by a smaller negative
        rebound, zero elsewhere; peak amplitude 1.
        """
        pulse = np.zeros_like(rel)
        stroke = (rel >= 0) & (rel < 0.18)
        pulse[stroke] = np.sin(np.pi * rel[stroke] / 0.18) ** 2
        rebound = (rel >= 0.18) & (rel < 0.45)
        pulse[rebound] = -0.35 * np.sin(np.pi * (rel[rebound] - 0.18) / 0.27) ** 2
        return pulse

    def head_displacement(
        self, n_frames: int, frame_rate_hz: float, rng: np.random.Generator
    ) -> np.ndarray:
        """BCG head displacement track (m) on the slow-time grid."""
        if n_frames < 1 or frame_rate_hz <= 0:
            raise ValueError("n_frames must be >= 1 and frame_rate_hz positive")
        duration = n_frames / frame_rate_hz
        t = np.arange(n_frames) / frame_rate_hz
        track = np.zeros(n_frames)
        for beat in self.beat_times(duration, rng):
            rel = (t - beat) * self.rate_hz
            track += self._beat_pulse(rel)
        return self.bcg_amplitude_m * track

"""Eye-blink point process and eyelid kinematics.

Blinking is the signal BlinkRadar hunts: *subtle* (≲1 mm effective
displacement, small reflecting area), *sparse* and *aperiodic* (inter-blink
intervals from hundreds of ms to tens of seconds), which is exactly why the
paper rules out frequency-domain detection (Sec. I).

Two pieces:

- :class:`BlinkProcess` draws blink onset times from a renewal process with
  log-normal inter-blink intervals and blink durations from the awake /
  drowsy statistics of Sec. II (awake: mean < 400 ms, min 75 ms; drowsy:
  > 400 ms and more frequent — Table I shows ~20/min awake vs ~26/min
  drowsy).
- :class:`BlinkKinematics` turns each event into an eyelid closure profile
  c(t) ∈ [0, 1]: a fast close (≈1/3 of the blink), a closed plateau, and a
  slower reopen (≈1/2 of the blink), the shape eyelid-tracking studies
  report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlinkEvent", "BlinkStatistics", "BlinkProcess", "BlinkKinematics"]

#: Physiological floor on blink duration (Caffier et al., cited in Sec. II-A).
MIN_BLINK_DURATION_S = 0.075


@dataclass(frozen=True)
class BlinkEvent:
    """One blink: onset time and total duration (both seconds)."""

    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError(f"blink start must be >= 0, got {self.start_s}")
        if self.duration_s < MIN_BLINK_DURATION_S:
            raise ValueError(
                f"blink duration {self.duration_s} s below physiological minimum "
                f"{MIN_BLINK_DURATION_S} s"
            )

    @property
    def end_s(self) -> float:
        """Time at which the eye is fully reopened."""
        return self.start_s + self.duration_s

    @property
    def center_s(self) -> float:
        """Mid-blink time, used for event matching in evaluation."""
        return self.start_s + self.duration_s / 2.0


@dataclass(frozen=True)
class BlinkStatistics:
    """Statistical parameters of a driver state's blinking.

    Attributes
    ----------
    rate_per_min:
        Mean blink rate (Table I: ~20/min awake, ~26/min drowsy).
    interval_cv:
        Coefficient of variation of the log-normal inter-blink interval.
        Blinking is aperiodic (cv well above what any spectral line could
        survive) but one-minute counts are fairly stable person-by-person
        — Table I's rows vary by ±2 — so the cv sits near 0.5–0.65.
    duration_mean_s / duration_sigma_s:
        Mean and std of the blink duration (truncated normal, floored at
        the physiological minimum). Awake ≈ 0.2–0.3 s; drowsy > 0.4 s.
    """

    rate_per_min: float
    interval_cv: float
    duration_mean_s: float
    duration_sigma_s: float

    def __post_init__(self) -> None:
        if self.rate_per_min <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_per_min}")
        if self.interval_cv <= 0:
            raise ValueError(f"interval_cv must be positive, got {self.interval_cv}")
        if self.duration_mean_s < MIN_BLINK_DURATION_S:
            raise ValueError("mean blink duration below physiological minimum")
        if self.duration_sigma_s < 0:
            raise ValueError("duration sigma must be >= 0")

    @staticmethod
    def awake(rate_per_min: float = 19.0) -> "BlinkStatistics":
        """Typical alert-driver statistics."""
        return BlinkStatistics(
            rate_per_min=rate_per_min,
            interval_cv=0.55,
            duration_mean_s=0.25,
            duration_sigma_s=0.06,
        )

    @staticmethod
    def drowsy(rate_per_min: float = 26.0) -> "BlinkStatistics":
        """Typical drowsy-driver statistics: faster and longer blinks."""
        return BlinkStatistics(
            rate_per_min=rate_per_min,
            interval_cv=0.65,
            duration_mean_s=0.55,
            duration_sigma_s=0.15,
        )


@dataclass(frozen=True)
class BlinkProcess:
    """Renewal process generating blink events over a time horizon."""

    stats: BlinkStatistics

    def sample_events(
        self, duration_s: float, rng: np.random.Generator
    ) -> list[BlinkEvent]:
        """Draw a blink event sequence covering ``[0, duration_s)``.

        Inter-blink intervals (onset to onset) are log-normal with mean
        ``60 / rate_per_min`` and the configured coefficient of variation;
        successive blinks never overlap (the next onset is pushed past the
        previous blink's end, as eyelids cannot re-blink mid-blink).
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        mean_interval = 60.0 / self.stats.rate_per_min
        # Log-normal parameterisation from mean m and cv:
        #   sigma² = ln(1 + cv²),  mu = ln m − sigma²/2.
        sigma2 = np.log1p(self.stats.interval_cv**2)
        mu = np.log(mean_interval) - sigma2 / 2.0
        events: list[BlinkEvent] = []
        # First onset: uniform over one mean interval so traces don't all
        # start with a blink at t=0.
        t = float(rng.uniform(0.2, mean_interval))
        while t < duration_s:
            duration = float(
                rng.normal(self.stats.duration_mean_s, self.stats.duration_sigma_s)
            )
            duration = max(duration, MIN_BLINK_DURATION_S)
            if t + duration > duration_s:
                break
            events.append(BlinkEvent(start_s=t, duration_s=duration))
            interval = float(rng.lognormal(mu, np.sqrt(sigma2)))
            # Enforce a refractory gap after reopening.
            t = max(t + interval, t + duration + 0.1)
        return events


@dataclass(frozen=True)
class BlinkKinematics:
    """Eyelid closure profile c(t) for a blink event.

    The profile rises 0→1 over the closing phase, holds at 1, and falls
    1→0 over the (slower) reopening phase, using raised-cosine ramps. The
    phase fractions default to close 30 %, hold 20 %, reopen 50 % of the
    blink duration.
    """

    close_fraction: float = 0.30
    hold_fraction: float = 0.20

    def __post_init__(self) -> None:
        if not 0 < self.close_fraction < 1 or not 0 <= self.hold_fraction < 1:
            raise ValueError("phase fractions must lie in (0, 1)")
        if self.close_fraction + self.hold_fraction >= 1:
            raise ValueError("close + hold fractions must leave room for reopening")

    @property
    def reopen_fraction(self) -> float:
        """Fraction of the blink spent reopening."""
        return 1.0 - self.close_fraction - self.hold_fraction

    def closure_at(self, t_s: np.ndarray, event: BlinkEvent) -> np.ndarray:
        """Closure fraction c(t) of ``event`` evaluated at times ``t_s``."""
        t = np.asarray(t_s, dtype=float)
        rel = (t - event.start_s) / event.duration_s
        c = np.zeros_like(rel)
        closing = (rel >= 0) & (rel < self.close_fraction)
        c[closing] = 0.5 * (1 - np.cos(np.pi * rel[closing] / self.close_fraction))
        holding = (rel >= self.close_fraction) & (
            rel < self.close_fraction + self.hold_fraction
        )
        c[holding] = 1.0
        reopening = (rel >= self.close_fraction + self.hold_fraction) & (rel <= 1.0)
        rel_open = (rel[reopening] - self.close_fraction - self.hold_fraction) / (
            self.reopen_fraction
        )
        c[reopening] = 0.5 * (1 + np.cos(np.pi * rel_open))
        return c

    def closure_track(
        self, events: list[BlinkEvent], n_frames: int, frame_rate_hz: float
    ) -> np.ndarray:
        """Closure fraction sampled on the radar's slow-time grid.

        Overlap cannot occur (the process enforces a refractory gap), so
        events are simply summed and clipped defensively.
        """
        if n_frames < 1 or frame_rate_hz <= 0:
            raise ValueError("n_frames must be >= 1 and frame_rate_hz positive")
        t = np.arange(n_frames) / frame_rate_hz
        track = np.zeros(n_frames)
        for event in events:
            track += self.closure_at(t, event)
        return np.clip(track, 0.0, 1.0)

"""Voluntary body motion: posture shifts and continuous micro-motion.

Two processes, matching the paper's interference taxonomy (Sec. IV-D
"self-interference" and Sec. IV-E "significant body movement"):

- :class:`PostureShiftProcess` — sparse, centimetre-scale repositioning
  (shifting in the seat, leaning). These are large enough that BlinkRadar
  "restarts the whole eye-blink detection process when a significant body
  movement happens"; the simulator reports their times so tests can verify
  the restart logic.
- :class:`MicroMotion` — an Ornstein–Uhlenbeck tremor in the 0.1 mm range
  that keeps the head from ever being perfectly still.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PostureShiftProcess", "MicroMotion"]


@dataclass(frozen=True)
class PostureShiftProcess:
    """Sparse cm-scale posture changes.

    Attributes
    ----------
    mean_interval_s:
        Mean time between shifts (Poisson process). Drivers resettle every
        half-minute to few minutes.
    amplitude_m:
        Typical displacement magnitude of a shift (std of a folded normal;
        sign random).
    transition_s:
        Duration of the smooth (raised-cosine) transition to the new
        position.
    """

    mean_interval_s: float = 45.0
    amplitude_m: float = 1.5e-2
    transition_s: float = 0.8

    def __post_init__(self) -> None:
        if self.mean_interval_s <= 0 or self.amplitude_m <= 0 or self.transition_s <= 0:
            raise ValueError("all posture-shift parameters must be positive")

    def sample_shifts(
        self, duration_s: float, rng: np.random.Generator
    ) -> list[tuple[float, float]]:
        """Draw ``(time_s, displacement_m)`` shift events over the horizon."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        shifts: list[tuple[float, float]] = []
        t = float(rng.exponential(self.mean_interval_s))
        while t < duration_s:
            magnitude = abs(float(rng.normal(0.0, self.amplitude_m)))
            sign = 1.0 if rng.random() < 0.5 else -1.0
            shifts.append((t, sign * magnitude))
            t += float(rng.exponential(self.mean_interval_s))
        return shifts

    def displacement(
        self, n_frames: int, frame_rate_hz: float, rng: np.random.Generator
    ) -> tuple[np.ndarray, list[float]]:
        """Cumulative posture displacement (m) and the shift times.

        Returns ``(track, shift_times_s)``; the track is a sum of smooth
        steps, one per shift.
        """
        if n_frames < 1 or frame_rate_hz <= 0:
            raise ValueError("n_frames must be >= 1 and frame_rate_hz positive")
        duration = n_frames / frame_rate_hz
        t = np.arange(n_frames) / frame_rate_hz
        track = np.zeros(n_frames)
        shifts = self.sample_shifts(duration, rng)
        for when, delta in shifts:
            rel = (t - when) / self.transition_s
            step = np.where(rel <= 0, 0.0, np.where(rel >= 1, 1.0, 0.5 * (1 - np.cos(np.pi * np.clip(rel, 0, 1)))))
            track += delta * step
        return track, [when for when, _ in shifts]


@dataclass(frozen=True)
class MicroMotion:
    """Ornstein–Uhlenbeck head tremor.

    Mean-reverting Gaussian process with stationary std ``sigma_m`` and
    correlation time ``tau_s``; the ever-present sub-millimetre jitter of a
    seated human.
    """

    sigma_m: float = 1.2e-4
    tau_s: float = 0.5

    def __post_init__(self) -> None:
        if self.sigma_m < 0 or self.tau_s <= 0:
            raise ValueError("sigma must be >= 0 and tau positive")

    def displacement(
        self, n_frames: int, frame_rate_hz: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Micro-motion displacement track (m) via exact OU discretisation."""
        if n_frames < 1 or frame_rate_hz <= 0:
            raise ValueError("n_frames must be >= 1 and frame_rate_hz positive")
        if self.sigma_m == 0:
            return np.zeros(n_frames)
        dt = 1.0 / frame_rate_hz
        decay = np.exp(-dt / self.tau_s)
        innovation_sigma = self.sigma_m * np.sqrt(1.0 - decay**2)
        track = np.empty(n_frames)
        track[0] = rng.normal(0.0, self.sigma_m)
        noise = rng.normal(0.0, innovation_sigma, size=n_frames - 1)
        for k in range(1, n_frames):
            track[k] = decay * track[k - 1] + noise[k - 1]
        return track

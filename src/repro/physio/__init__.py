"""Driver physiology models.

Everything the radar "sees" on the human side of the cabin is produced
here, with magnitudes taken from the literature the paper cites:

- :mod:`repro.physio.blink` — the sparse, aperiodic blink point process and
  the eyelid closure kinematics (Caffier et al.: typical blink < 400 ms,
  minimum ~75 ms; drowsy blinks exceed 400 ms; Sec. II-A).
- :mod:`repro.physio.respiration` — chest wall displacement (mm-scale,
  ~0.2–0.3 Hz) plus its small coupling into head motion.
- :mod:`repro.physio.cardiac` — heart-rate process and the ~1 mm
  ballistocardiographic (BCG) head displacement synchronised with the
  heartbeat (Sec. IV-D "Biosignal noise").
- :mod:`repro.physio.body` — voluntary/postural movement: sparse cm-scale
  posture shifts and a continuous sub-millimetre micro-motion.
- :mod:`repro.physio.driver` — :class:`~repro.physio.driver.DriverModel`,
  which composes all of the above from a participant profile into the
  displacement/closure tracks the channel consumes.
"""

from repro.physio.blink import BlinkEvent, BlinkKinematics, BlinkProcess, BlinkStatistics
from repro.physio.body import MicroMotion, PostureShiftProcess
from repro.physio.cardiac import CardiacModel
from repro.physio.driver import DriverModel, DriverMotion, EyeGeometry, ParticipantProfile
from repro.physio.respiration import RespirationModel

__all__ = [
    "BlinkEvent",
    "BlinkKinematics",
    "BlinkProcess",
    "BlinkStatistics",
    "MicroMotion",
    "PostureShiftProcess",
    "CardiacModel",
    "DriverModel",
    "DriverMotion",
    "EyeGeometry",
    "ParticipantProfile",
    "RespirationModel",
]

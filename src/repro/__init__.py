"""BlinkRadar: non-intrusive driver eye-blink detection with UWB radar.

A full reproduction of Hu et al., ICDCS 2022, with a physics-based IR-UWB
simulation substrate standing in for the radar hardware and the human
participants (see DESIGN.md for the substitution map).

Quickstart::

    from repro import BlinkRadar, Scenario, simulate
    from repro.physio import ParticipantProfile

    scenario = Scenario(participant=ParticipantProfile("P01"),
                        road="smooth_highway", duration_s=60.0)
    trace = simulate(scenario, seed=1)

    radar = BlinkRadar(frame_rate_hz=trace.frame_rate_hz)
    result = radar.detect(trace.frames)
    print(result.event_times_s, trace.blink_times_s)

Subpackages
-----------
- :mod:`repro.core` — the BlinkRadar detection pipeline (the paper's
  contribution).
- :mod:`repro.rf` — IR-UWB radar physics (pulse, channel, receiver).
- :mod:`repro.physio` — driver physiology (blinks, respiration, BCG, ...).
- :mod:`repro.vehicle` — cabin clutter and road-induced vibration.
- :mod:`repro.sim` — scenario composition and labelled traces.
- :mod:`repro.hardware` — register/SPI-level device emulation.
- :mod:`repro.baselines` — ablations and naive alternatives.
- :mod:`repro.eval` — metrics, session batteries and sweeps.
- :mod:`repro.datasets` — the synthetic participant cohorts.
- :mod:`repro.dsp` — the generic DSP substrate underneath it all.
"""

from repro.core.pipeline import BlinkRadar, BlinkRadarResult
from repro.sim.scenario import Scenario
from repro.sim.simulator import simulate
from repro.sim.trace import RadarTrace

__version__ = "1.0.0"

__all__ = [
    "BlinkRadar",
    "BlinkRadarResult",
    "Scenario",
    "simulate",
    "RadarTrace",
    "__version__",
]

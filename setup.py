"""Setup shim: lets the package install in environments without the
``wheel`` package (where PEP-517 editable installs fail)."""
from setuptools import setup

setup()

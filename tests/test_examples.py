"""Smoke tests for the example scripts.

Each example must import cleanly and expose a ``main``; the quickstart is
additionally executed end to end (the others take minutes and are
exercised implicitly by the unit/benchmark suites covering the same
APIs).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        assert "quickstart" in EXAMPLES
        assert len(EXAMPLES) >= 5  # the deliverable: >= 3 runnable examples

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_imports_and_has_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None)), f"{name} lacks main()"

    @pytest.mark.slow
    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "detected" in out

"""Tests for respiration, cardiac and body-motion models."""

import numpy as np
import pytest

from repro.dsp.spectral import dominant_frequency
from repro.physio.body import MicroMotion, PostureShiftProcess
from repro.physio.cardiac import CardiacModel
from repro.physio.respiration import RespirationModel


class TestRespiration:
    def test_amplitude_bounded(self, rng):
        model = RespirationModel()
        d = model.displacement(3000, 25.0, rng)
        assert np.abs(d).max() < 1.5 * model.amplitude_m

    def test_dominant_frequency_near_rate(self, rng):
        model = RespirationModel(rate_hz=0.25)
        d = model.displacement(6000, 25.0, rng)
        assert dominant_frequency(d, 25.0, fmin=0.05) == pytest.approx(0.25, abs=0.08)

    def test_head_coupling_fraction(self, rng):
        model = RespirationModel()
        chest = model.displacement(1000, 25.0, rng)
        head = model.head_displacement(chest)
        assert np.allclose(head, model.head_coupling * chest)

    def test_head_sway_produces_resolvable_arc(self, rng):
        # The head must sway enough that phase = 4π·d/λ sweeps > 1 rad
        # peak-to-peak — the condition for the I/Q arc BlinkRadar fits.
        model = RespirationModel()
        head = model.head_displacement(model.displacement(3000, 25.0, rng))
        phase_pp = 4 * np.pi * 7.3e9 / 3e8 * (head.max() - head.min())
        assert phase_pp > 1.0

    def test_rate_variability(self, rng):
        model = RespirationModel()
        d = model.displacement(15000, 25.0, rng)
        # Zero-crossing intervals must vary (not a pure tone).
        crossings = np.flatnonzero(np.diff(np.sign(d)) > 0)
        intervals = np.diff(crossings)
        assert np.std(intervals) > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RespirationModel(rate_hz=0)
        with pytest.raises(ValueError):
            RespirationModel(head_coupling=1.5)
        with pytest.raises(ValueError):
            RespirationModel().displacement(0, 25.0, np.random.default_rng(0))


class TestCardiac:
    def test_beat_times_within_horizon(self, rng):
        beats = CardiacModel().beat_times(60.0, rng)
        assert beats.min() >= 0 and beats.max() < 60.0

    def test_beat_rate(self, rng):
        model = CardiacModel(rate_hz=1.15)
        beats = model.beat_times(600.0, rng)
        assert len(beats) / 600.0 == pytest.approx(1.15, rel=0.1)

    def test_bcg_amplitude_about_1mm(self, rng):
        model = CardiacModel()
        track = model.head_displacement(3000, 25.0, rng)
        # Peak displacement ≈ the paper's "approximate 1mm head movement".
        assert track.max() == pytest.approx(1e-3, rel=0.2)

    def test_bcg_has_rebound(self, rng):
        track = CardiacModel().head_displacement(3000, 25.0, rng)
        assert track.min() < -0.1e-3

    def test_rr_floor(self, rng):
        model = CardiacModel(rate_hz=3.0, rate_jitter_frac=1.0)
        beats = model.beat_times(60.0, rng)
        assert np.diff(beats).min() >= 0.3 - 1e-12

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CardiacModel(rate_hz=0)
        with pytest.raises(ValueError):
            CardiacModel().beat_times(-1.0, np.random.default_rng(0))


class TestPostureShift:
    def test_shift_times_sorted(self, rng):
        shifts = PostureShiftProcess().sample_shifts(600.0, rng)
        times = [t for t, _ in shifts]
        assert times == sorted(times)

    def test_mean_interval(self, rng):
        process = PostureShiftProcess(mean_interval_s=30.0)
        shifts = process.sample_shifts(6000.0, rng)
        assert len(shifts) == pytest.approx(200, rel=0.2)

    def test_track_reaches_cm_scale(self, rng):
        process = PostureShiftProcess(mean_interval_s=10.0)
        track, times = process.displacement(2500, 25.0, rng)
        assert len(times) > 0
        assert np.abs(np.diff(track)).max() > 0  # actually moves

    def test_track_smooth_transitions(self, rng):
        process = PostureShiftProcess(mean_interval_s=20.0, transition_s=0.8)
        track, _ = process.displacement(5000, 25.0, rng)
        # No instantaneous jumps: per-frame change bounded by
        # amplitude/transition_frames scale.
        assert np.abs(np.diff(track)).max() < 0.02

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PostureShiftProcess(mean_interval_s=0)


class TestMicroMotion:
    def test_stationary_std(self, rng):
        mm = MicroMotion(sigma_m=1e-4, tau_s=0.5)
        track = mm.displacement(50_000, 25.0, rng)
        assert np.std(track) == pytest.approx(1e-4, rel=0.1)

    def test_autocorrelation_time(self, rng):
        mm = MicroMotion(sigma_m=1e-4, tau_s=1.0)
        track = mm.displacement(50_000, 25.0, rng)
        ac = np.correlate(track, track, "full")[len(track) - 1 :]
        ac /= ac[0]
        lag = np.argmax(ac < np.exp(-1))
        assert lag / 25.0 == pytest.approx(1.0, rel=0.3)

    def test_zero_sigma(self, rng):
        assert np.all(MicroMotion(sigma_m=0.0).displacement(100, 25.0, rng) == 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            MicroMotion(tau_s=0)

"""Tests for repro.physio.blink."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physio.blink import (
    MIN_BLINK_DURATION_S,
    BlinkEvent,
    BlinkKinematics,
    BlinkProcess,
    BlinkStatistics,
)


class TestBlinkEvent:
    def test_derived_times(self):
        e = BlinkEvent(start_s=10.0, duration_s=0.4)
        assert e.end_s == pytest.approx(10.4)
        assert e.center_s == pytest.approx(10.2)

    def test_physiological_floor(self):
        with pytest.raises(ValueError):
            BlinkEvent(start_s=0.0, duration_s=0.05)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            BlinkEvent(start_s=-1.0, duration_s=0.3)


class TestBlinkStatistics:
    def test_awake_vs_drowsy_contrast(self):
        awake, drowsy = BlinkStatistics.awake(), BlinkStatistics.drowsy()
        # Sec. II: drowsy = more frequent AND longer blinks.
        assert drowsy.rate_per_min > awake.rate_per_min
        assert drowsy.duration_mean_s > awake.duration_mean_s
        assert drowsy.duration_mean_s > 0.4  # "will exceed 400ms"
        assert awake.duration_mean_s < 0.4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BlinkStatistics(0, 0.5, 0.3, 0.05)
        with pytest.raises(ValueError):
            BlinkStatistics(20, 0.5, 0.01, 0.05)


class TestBlinkProcess:
    def test_rate_matches_statistics(self, rng):
        stats = BlinkStatistics.awake(rate_per_min=20.0)
        events = BlinkProcess(stats).sample_events(600.0, rng)
        rate = len(events) / 10.0
        assert rate == pytest.approx(20.0, rel=0.25)

    def test_no_overlap(self, rng):
        events = BlinkProcess(BlinkStatistics.drowsy()).sample_events(300.0, rng)
        for a, b in zip(events, events[1:]):
            assert b.start_s >= a.end_s

    def test_all_within_horizon(self, rng):
        events = BlinkProcess(BlinkStatistics.awake()).sample_events(60.0, rng)
        assert all(0 <= e.start_s and e.end_s <= 60.0 for e in events)

    def test_durations_above_floor(self, rng):
        events = BlinkProcess(BlinkStatistics.awake()).sample_events(300.0, rng)
        assert all(e.duration_s >= MIN_BLINK_DURATION_S for e in events)

    def test_aperiodicity(self, rng):
        # Blink intervals must be genuinely variable (cv >> 0), the
        # property that defeats frequency-domain detection.
        events = BlinkProcess(BlinkStatistics.awake()).sample_events(600.0, rng)
        intervals = np.diff([e.start_s for e in events])
        assert np.std(intervals) / np.mean(intervals) > 0.3

    def test_bad_duration_rejected(self, rng):
        with pytest.raises(ValueError):
            BlinkProcess(BlinkStatistics.awake()).sample_events(0.0, rng)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_events_sorted_for_any_seed(self, seed):
        rng = np.random.default_rng(seed)
        events = BlinkProcess(BlinkStatistics.drowsy()).sample_events(120.0, rng)
        starts = [e.start_s for e in events]
        assert starts == sorted(starts)


class TestBlinkKinematics:
    def test_closure_bounds(self):
        kin = BlinkKinematics()
        e = BlinkEvent(1.0, 0.3)
        t = np.linspace(0, 3, 500)
        c = kin.closure_at(t, e)
        assert c.min() >= 0.0 and c.max() <= 1.0

    def test_fully_closed_during_hold(self):
        kin = BlinkKinematics()
        e = BlinkEvent(0.0, 1.0)
        hold_mid = kin.close_fraction + kin.hold_fraction / 2
        assert kin.closure_at(np.array([hold_mid]), e)[0] == pytest.approx(1.0)

    def test_open_outside_event(self):
        kin = BlinkKinematics()
        e = BlinkEvent(1.0, 0.3)
        assert kin.closure_at(np.array([0.5, 2.0]), e) == pytest.approx([0.0, 0.0])

    def test_reopen_slower_than_close(self):
        kin = BlinkKinematics()
        assert kin.reopen_fraction > kin.close_fraction

    def test_track_covers_all_events(self, rng):
        kin = BlinkKinematics()
        events = [BlinkEvent(1.0, 0.3), BlinkEvent(3.0, 0.5)]
        track = kin.closure_track(events, n_frames=125, frame_rate_hz=25.0)
        assert track.max() == pytest.approx(1.0, abs=0.05)
        assert track[:20].max() == 0.0  # before the first blink

    def test_track_clipped(self):
        kin = BlinkKinematics()
        # Overlapping events (not produced by the process, but the track
        # must stay physical anyway).
        events = [BlinkEvent(1.0, 0.5), BlinkEvent(1.1, 0.5)]
        track = kin.closure_track(events, 100, 25.0)
        assert track.max() <= 1.0

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            BlinkKinematics(close_fraction=0.7, hold_fraction=0.4)
        with pytest.raises(ValueError):
            BlinkKinematics(close_fraction=0.0)

    def test_bad_track_args(self):
        with pytest.raises(ValueError):
            BlinkKinematics().closure_track([], 0, 25.0)

"""Tests for repro.physio.driver."""

import numpy as np
import pytest

from repro.physio.blink import BlinkStatistics
from repro.physio.driver import (
    EYELID_PROTRUSION_M,
    DriverModel,
    EyeGeometry,
    ParticipantProfile,
)


class TestEyeGeometry:
    def test_default_plausible(self):
        eye = EyeGeometry()
        assert 1e-4 < eye.rcs_m2 < 1e-2

    def test_rcs_grows_with_size(self):
        small = EyeGeometry(width_m=0.035, height_m=0.008)
        large = EyeGeometry(width_m=0.046, height_m=0.013)
        assert large.rcs_m2 > small.rcs_m2

    def test_paper_smallest_eye_accepted(self):
        EyeGeometry(width_m=0.035, height_m=0.008)  # 3.5 × 0.8 cm

    def test_implausible_rejected(self):
        with pytest.raises(ValueError):
            EyeGeometry(width_m=0.2, height_m=0.01)
        with pytest.raises(ValueError):
            EyeGeometry(width_m=0.04, height_m=0.001)


class TestParticipantProfile:
    def test_blink_stats_selector(self):
        p = ParticipantProfile("X")
        assert p.blink_stats("awake") is p.awake
        assert p.blink_stats("drowsy") is p.drowsy
        with pytest.raises(ValueError):
            p.blink_stats("sleepy")

    def test_glasses_validation(self):
        with pytest.raises(ValueError):
            ParticipantProfile("X", glasses="monocle")

    def test_restlessness_validation(self):
        with pytest.raises(ValueError):
            ParticipantProfile("X", restlessness=0)


class TestDriverModel:
    def make(self, state="awake", n=1500, seed=0, posture=True):
        model = DriverModel(ParticipantProfile("X"))
        return model.generate(
            n, 25.0, state, np.random.default_rng(seed), allow_posture_shifts=posture
        )

    def test_track_lengths_consistent(self):
        m = self.make()
        assert (
            len(m.eyelid_closure)
            == len(m.blink_reflectivity_weight)
            == len(m.head_displacement)
            == len(m.eye_extra_displacement)
            == len(m.chest_displacement)
            == m.n_frames
        )

    def test_closure_matches_events(self):
        m = self.make()
        for e in m.blink_events:
            k = int(e.center_s * 25)
            assert m.eyelid_closure[max(0, k - 3) : k + 4].max() > 0.5

    def test_eye_extra_displacement_sign(self):
        # Closing brings the reflecting surface toward the radar.
        m = self.make()
        assert np.all(m.eye_extra_displacement <= 0)
        assert m.eye_extra_displacement.min() == pytest.approx(
            -EYELID_PROTRUSION_M, rel=0.05
        )

    def test_no_posture_when_disabled(self):
        m = self.make(posture=False)
        assert m.posture_shift_times_s == []

    def test_head_and_chest_differ(self):
        m = self.make()
        assert not np.allclose(m.head_displacement, m.chest_displacement)

    def test_drowsy_blinks_longer(self):
        awake = self.make("awake", n=25 * 240, seed=1)
        drowsy = self.make("drowsy", n=25 * 240, seed=1)
        mean_awake = np.mean([e.duration_s for e in awake.blink_events])
        mean_drowsy = np.mean([e.duration_s for e in drowsy.blink_events])
        assert mean_drowsy > 0.4 > mean_awake

    def test_reflectivity_weight_varies_per_blink(self):
        m = self.make(n=25 * 240, seed=2)
        peaks = []
        for e in m.blink_events:
            a, b = int(e.start_s * 25), int(e.end_s * 25) + 1
            peaks.append(m.blink_reflectivity_weight[a:b].max())
        assert np.std(peaks) > 0.05  # log-normal per-event gain

    def test_deterministic_given_seed(self):
        a, b = self.make(seed=7), self.make(seed=7)
        assert np.allclose(a.head_displacement, b.head_displacement)
        assert [e.start_s for e in a.blink_events] == [e.start_s for e in b.blink_events]

    def test_restlessness_scales_shift_rate(self):
        calm = ParticipantProfile("C", restlessness=0.5)
        restless = ParticipantProfile("R", restlessness=2.0)
        calm_proc = DriverModel(calm).posture_process()
        restless_proc = DriverModel(restless).posture_process()
        assert restless_proc.mean_interval_s < calm_proc.mean_interval_s

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            self_model = DriverModel(ParticipantProfile("X"))
            self_model.generate(0, 25.0, "awake", np.random.default_rng(0))

"""Statistical properties of the blink process across the cohort."""

import numpy as np
import pytest

from repro.datasets import (
    TABLE1_MORNING_RATES,
    TABLE1_NIGHT_RATES,
    study_participants,
    table1_participants,
)
from repro.physio.blink import BlinkProcess


def minute_counts(stats, n_minutes, seed):
    rng = np.random.default_rng(seed)
    process = BlinkProcess(stats)
    return np.array([len(process.sample_events(60.0, rng)) for _ in range(n_minutes)])


class TestCohortStatistics:
    def test_table1_rates_reproduced_in_expectation(self):
        for i, p in enumerate(table1_participants()):
            counts = minute_counts(p.awake, 30, seed=i)
            assert counts.mean() == pytest.approx(TABLE1_MORNING_RATES[i], abs=2.5)
            counts = minute_counts(p.drowsy, 30, seed=100 + i)
            assert counts.mean() == pytest.approx(TABLE1_NIGHT_RATES[i], abs=2.5)

    def test_minute_count_stability_matches_table1(self):
        # Table I's per-person counts are stable (±~2); the process must
        # produce a per-minute std in that regime, not Poisson-wide.
        p = table1_participants()[0]
        counts = minute_counts(p.awake, 60, seed=5)
        assert counts.std() < 4.0

    def test_every_study_participant_separable_in_one_minute(self):
        # The premise of drowsiness detection: awake/drowsy mean counts
        # differ by clearly more than their per-minute noise.
        for i, p in enumerate(study_participants()):
            awake = minute_counts(p.awake, 20, seed=i)
            drowsy = minute_counts(p.drowsy, 20, seed=200 + i)
            gap = drowsy.mean() - awake.mean()
            noise = np.hypot(awake.std(), drowsy.std())
            assert gap > noise, p.name

    def test_drowsy_durations_exceed_400ms_marker(self):
        # Sec. II-A: "the blinking time will exceed 400ms" when drowsy.
        rng = np.random.default_rng(9)
        for p in study_participants()[:4]:
            events = BlinkProcess(p.drowsy).sample_events(300.0, rng)
            durations = np.array([e.duration_s for e in events])
            assert np.median(durations) > 0.4
            events = BlinkProcess(p.awake).sample_events(300.0, rng)
            durations = np.array([e.duration_s for e in events])
            assert np.median(durations) < 0.4

"""Tests for repro.vehicle (road catalogue, vibration, cabin, vehicle)."""

import numpy as np
import pytest

from repro.vehicle.cabin import CabinGeometry, CabinReflector, default_cabin
from repro.vehicle.road import PARKED, ROAD_GROUPS, ROAD_TYPES, RoadCondition, get_road
from repro.vehicle.vehicle import VehicleModel
from repro.vehicle.vibration import VibrationModel


class TestRoadCatalogue:
    def test_all_nine_paper_conditions_present(self):
        expected = {
            "smooth_highway", "bumpy", "uphill", "downhill", "intersection",
            "left_turn", "right_turn", "roundabout", "u_turn",
        }
        assert expected <= set(ROAD_TYPES)

    def test_parked_is_quiet(self):
        assert PARKED.vibration_rms_m == 0.0
        assert PARKED.maneuver_rate_hz == 0.0

    def test_bumpy_roughest(self):
        driving = [c for n, c in ROAD_TYPES.items() if n != "parked"]
        assert ROAD_TYPES["bumpy"].vibration_rms_m == max(
            c.vibration_rms_m for c in driving
        )

    def test_groups_cover_increasing_difficulty(self):
        # Group severity (vibration + maneuvers) must increase 1 → 4.
        def severity(group):
            conds = [ROAD_TYPES[n] for n in ROAD_GROUPS[group]]
            return np.mean([
                c.vibration_rms_m + c.maneuver_rate_hz * c.maneuver_amplitude_m
                for c in conds
            ])
        sevs = [severity(g) for g in sorted(ROAD_GROUPS)]
        assert all(a < b for a, b in zip(sevs, sevs[1:]))

    def test_groups_reference_known_roads(self):
        for names in ROAD_GROUPS.values():
            for name in names:
                assert name in ROAD_TYPES

    def test_get_road_error(self):
        with pytest.raises(KeyError, match="known"):
            get_road("gravel")

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            RoadCondition("bad", -1e-4, 0, 0, 0)


class TestVibration:
    def test_parked_silent(self, rng):
        d = VibrationModel(PARKED).displacement(1000, 25.0, rng)
        assert np.all(d == 0)

    def test_rms_matches_condition(self, rng):
        cond = ROAD_TYPES["smooth_highway"]
        quiet = RoadCondition("t", cond.vibration_rms_m, 0, 0, 0)
        d = VibrationModel(quiet).displacement(20000, 25.0, rng)
        assert np.sqrt(np.mean(d**2)) == pytest.approx(cond.vibration_rms_m, rel=0.1)

    def test_bumpy_rougher_than_smooth(self, rng):
        smooth = VibrationModel(ROAD_TYPES["smooth_highway"]).displacement(
            5000, 25.0, np.random.default_rng(1)
        )
        bumpy = VibrationModel(ROAD_TYPES["bumpy"]).displacement(
            5000, 25.0, np.random.default_rng(1)
        )
        assert np.std(bumpy) > 2 * np.std(smooth)

    def test_bumps_create_transients(self, rng):
        cond = RoadCondition("t", 0, bump_rate_hz=0.5, maneuver_rate_hz=0,
                             maneuver_amplitude_m=0)
        d = VibrationModel(cond).displacement(5000, 25.0, rng)
        assert np.abs(d).max() > 1e-3  # mm-scale pulses present

    def test_band_edges_validated(self):
        with pytest.raises(ValueError):
            VibrationModel(PARKED, band_low_hz=5.0, band_high_hz=1.0)

    def test_band_above_nyquist_rejected(self, rng):
        vm = VibrationModel(ROAD_TYPES["smooth_highway"], band_high_hz=20.0)
        with pytest.raises(ValueError):
            vm.displacement(100, 25.0, rng)

    def test_zero_frames_rejected(self, rng):
        with pytest.raises(ValueError):
            VibrationModel(PARKED).displacement(0, 25.0, rng)


class TestCabin:
    def test_default_cabin_has_paper_reflectors(self):
        names = {r.name for r in default_cabin().reflectors}
        assert {"steering_wheel", "seat_back", "dashboard"} <= names

    def test_relative_ranges_resolve(self):
        cabin = default_cabin()
        resolved = dict()
        for reflector, rng_m in cabin.resolved(0.4):
            resolved[reflector.name] = rng_m
        assert resolved["steering_wheel"] == pytest.approx(0.26)
        assert resolved["headrest"] == pytest.approx(0.62)

    def test_reflectors_behind_driver_scale_with_distance(self):
        cabin = default_cabin()
        near = dict((r.name, rm) for r, rm in cabin.resolved(0.2))
        far = dict((r.name, rm) for r, rm in cabin.resolved(0.8))
        assert far["seat_back"] - near["seat_back"] == pytest.approx(0.6)
        assert far["steering_wheel"] == near["steering_wheel"]

    def test_unknown_material_rejected(self):
        with pytest.raises(KeyError):
            CabinReflector("x", 0.3, "unobtanium", 1e-2)

    def test_nonpositive_resolution_rejected(self):
        r = CabinReflector("x", -0.5, "metal", 1e-2, relative_to_driver=True)
        with pytest.raises(ValueError):
            r.absolute_range_m(0.3)


class TestVehicleModel:
    def test_clutter_motion_much_smaller_than_body(self, rng):
        vm = VehicleModel(road=ROAD_TYPES["bumpy"])
        body = vm.vibration(2000, 25.0, rng)
        clutter = vm.clutter_vibration(body)
        assert np.abs(clutter).max() < 0.05 * np.abs(body).max()

    def test_coupling_validated(self):
        vm = VehicleModel()
        with pytest.raises(ValueError):
            vm.clutter_vibration(np.zeros(5), coupling=1.5)

"""True-positive and near-miss gates for the asyncio concurrency rules."""

from __future__ import annotations

from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.rules import rules_by_name


def _run(tmp_path: Path, source: str, *rule_names: str, subpkg: str = "gateway"):
    root = tmp_path / "repro" / subpkg
    root.mkdir(parents=True, exist_ok=True)
    (root / "mod.py").write_text(source)
    registry = rules_by_name()
    rules = tuple(registry[name] for name in rule_names)
    result = lint_paths([tmp_path / "repro"], rules=rules, jobs=1, root=tmp_path)
    return result.diagnostics


class TestBlockingInAsync:
    def test_direct_primitive_fires(self, tmp_path):
        diags = _run(
            tmp_path,
            "import time\nasync def f():\n    time.sleep(1)\n",
            "blocking-in-async",
        )
        assert [d.rule for d in diags] == ["blocking-in-async"]
        assert "time.sleep" in diags[0].message

    def test_transitive_sync_helper_fires_naming_the_leaf(self, tmp_path):
        diags = _run(
            tmp_path,
            "import time\n"
            "def helper():\n"
            "    middle()\n"
            "def middle():\n"
            "    time.sleep(1)\n"
            "async def f():\n"
            "    helper()\n",
            "blocking-in-async",
        )
        assert [d.rule for d in diags] == ["blocking-in-async"]
        assert diags[0].line == 7  # the call site in the async function
        assert "time.sleep" in diags[0].message
        assert "repro.gateway.mod:5" in diags[0].message  # the leaf site

    def test_asyncio_sleep_is_a_near_miss(self, tmp_path):
        diags = _run(
            tmp_path,
            "import asyncio\nasync def f():\n    await asyncio.sleep(1)\n",
            "blocking-in-async",
        )
        assert diags == []

    def test_blocking_in_sync_code_is_fine(self, tmp_path):
        diags = _run(
            tmp_path,
            "import time\ndef f():\n    time.sleep(1)\n",
            "blocking-in-async",
        )
        assert diags == []

    def test_async_callee_is_convicted_once_at_its_own_site(self, tmp_path):
        diags = _run(
            tmp_path,
            "import time\n"
            "async def inner():\n"
            "    time.sleep(1)\n"
            "async def outer():\n"
            "    await inner()\n",
            "blocking-in-async",
        )
        assert [(d.rule, d.line) for d in diags] == [("blocking-in-async", 3)]

    def test_executor_handoff_is_a_near_miss(self, tmp_path):
        diags = _run(
            tmp_path,
            "import asyncio, time\n"
            "def blocking():\n"
            "    time.sleep(1)\n"
            "async def f():\n"
            "    loop = asyncio.get_running_loop()\n"
            "    await loop.run_in_executor(None, blocking)\n",
            "blocking-in-async",
        )
        assert diags == []


class TestUnawaitedCoroutine:
    def test_discarded_coroutine_fires(self, tmp_path):
        diags = _run(
            tmp_path,
            "async def work():\n    pass\nasync def f():\n    work()\n",
            "unawaited-coroutine",
        )
        assert [d.rule for d in diags] == ["unawaited-coroutine"]
        assert diags[0].line == 4

    def test_awaited_call_is_a_near_miss(self, tmp_path):
        diags = _run(
            tmp_path,
            "async def work():\n    pass\nasync def f():\n    await work()\n",
            "unawaited-coroutine",
        )
        assert diags == []

    def test_assigned_coroutine_is_a_near_miss(self, tmp_path):
        # The handle may be awaited/gathered later; only the dropped
        # call is certain to be a bug.
        diags = _run(
            tmp_path,
            "import asyncio\n"
            "async def work():\n    pass\n"
            "async def f():\n"
            "    coro = work()\n"
            "    await asyncio.wait_for(coro, 1)\n",
            "unawaited-coroutine",
        )
        assert diags == []

    def test_discarded_sync_call_is_a_near_miss(self, tmp_path):
        diags = _run(
            tmp_path,
            "def work():\n    pass\nasync def f():\n    work()\n",
            "unawaited-coroutine",
        )
        assert diags == []


class TestLockAcrossAwait:
    def test_threading_lock_attr_held_across_await_fires(self, tmp_path):
        diags = _run(
            tmp_path,
            "import asyncio, threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    async def go(self):\n"
            "        with self._lock:\n"
            "            await asyncio.sleep(1)\n",
            "lock-across-await",
        )
        assert [d.rule for d in diags] == ["lock-across-await"]
        assert "threading.Lock" in diags[0].message

    def test_local_condition_from_import_fires(self, tmp_path):
        diags = _run(
            tmp_path,
            "import asyncio\n"
            "from threading import Condition\n"
            "async def go():\n"
            "    cond = Condition()\n"
            "    with cond:\n"
            "        await asyncio.sleep(1)\n",
            "lock-across-await",
        )
        assert [d.rule for d in diags] == ["lock-across-await"]

    def test_lock_without_await_in_body_is_a_near_miss(self, tmp_path):
        diags = _run(
            tmp_path,
            "import asyncio, threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    async def go(self):\n"
            "        with self._lock:\n"
            "            x = 1\n"
            "        await asyncio.sleep(x)\n",
            "lock-across-await",
        )
        assert diags == []

    def test_non_lock_context_manager_is_a_near_miss(self, tmp_path):
        diags = _run(
            tmp_path,
            "import asyncio\n"
            "async def go(path):\n"
            "    with open(path) as fh:\n"  # blocking, but not a *lock*
            "        await asyncio.sleep(1)\n",
            "lock-across-await",
        )
        assert diags == []


class TestTaskLeak:
    def test_discarded_spawn_fires(self, tmp_path):
        diags = _run(
            tmp_path,
            "import asyncio\n"
            "async def work():\n    pass\n"
            "async def f():\n"
            "    asyncio.create_task(work())\n",
            "task-leak",
        )
        assert [d.rule for d in diags] == ["task-leak"]

    def test_leak_on_one_path_fires(self, tmp_path):
        diags = _run(
            tmp_path,
            "import asyncio\n"
            "async def work():\n    pass\n"
            "async def f(cond):\n"
            "    t = asyncio.create_task(work())\n"
            "    if cond:\n"
            "        return None\n"  # the task handle is dropped here
            "    return await t\n",
            "task-leak",
        )
        assert [d.rule for d in diags] == ["task-leak"]
        assert "'t'" in diags[0].message

    def test_cancel_in_finally_is_a_near_miss(self, tmp_path):
        diags = _run(
            tmp_path,
            "import asyncio\n"
            "async def work():\n    pass\n"
            "async def f():\n"
            "    t = asyncio.create_task(work())\n"
            "    try:\n"
            "        await asyncio.sleep(1)\n"
            "    finally:\n"
            "        t.cancel()\n",
            "task-leak",
        )
        assert diags == []

    def test_awaited_task_is_a_near_miss(self, tmp_path):
        diags = _run(
            tmp_path,
            "import asyncio\n"
            "async def work():\n    pass\n"
            "async def f():\n"
            "    t = asyncio.create_task(work())\n"
            "    await t\n",
            "task-leak",
        )
        assert diags == []

    def test_stored_or_gathered_task_is_a_near_miss(self, tmp_path):
        diags = _run(
            tmp_path,
            "import asyncio\n"
            "async def work():\n    pass\n"
            "class Owner:\n"
            "    async def start(self):\n"
            "        self._t = asyncio.create_task(work())\n"
            "async def f():\n"
            "    a = asyncio.create_task(work())\n"
            "    b = asyncio.create_task(work())\n"
            "    await asyncio.gather(a, b)\n",
            "task-leak",
        )
        assert diags == []

"""Interprocedural resource-lifecycle gates: inferred ownership hand-offs."""

from __future__ import annotations

from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.rules import rules_by_name


def _run(tmp_path: Path, source: str):
    root = tmp_path / "repro" / "store"
    root.mkdir(parents=True, exist_ok=True)
    (root / "mod.py").write_text(source)
    rules = (rules_by_name()["resource-leak"],)
    result = lint_paths([tmp_path / "repro"], rules=rules, jobs=1, root=tmp_path)
    return result.diagnostics


class TestInferredHandOffs:
    def test_pass_to_a_helper_that_only_reads_keeps_the_obligation(self, tmp_path):
        # Pre-interprocedural engines treated every call argument as an
        # escape; the summary now knows peek() neither consumes nor
        # stores the handle, so the leak stays with the caller.
        diags = _run(
            tmp_path,
            "def peek(h):\n"
            "    h.seek(0)\n"
            "def use(path):\n"
            "    fh = open(path)\n"
            "    peek(fh)\n"
            "    return 1\n",
        )
        assert [d.rule for d in diags] == ["resource-leak"]
        assert "'fh'" in diags[0].message

    def test_pass_to_a_consuming_helper_counts_as_release(self, tmp_path):
        diags = _run(
            tmp_path,
            "def finish(h):\n"
            "    h.close()\n"
            "def use(path):\n"
            "    fh = open(path)\n"
            "    finish(fh)\n"
            "    return 1\n",
        )
        assert diags == []

    def test_transitively_consuming_helper_counts_as_release(self, tmp_path):
        diags = _run(
            tmp_path,
            "def finish(h):\n"
            "    h.close()\n"
            "def delegate(handle):\n"
            "    finish(handle)\n"
            "def use(path):\n"
            "    fh = open(path)\n"
            "    delegate(fh)\n"
            "    return 1\n",
        )
        assert diags == []

    def test_pass_to_a_storing_helper_is_an_escape(self, tmp_path):
        diags = _run(
            tmp_path,
            "_box = []\n"
            "def stash(h):\n"
            "    _box.append(h)\n"
            "def use(path):\n"
            "    fh = open(path)\n"
            "    stash(fh)\n"
            "    return 1\n",
        )
        assert diags == []  # the new owner carries the obligation

    def test_pass_to_an_external_callable_is_an_escape(self, tmp_path):
        diags = _run(
            tmp_path,
            "import json\n"
            "def use(path):\n"
            "    fh = open(path)\n"
            "    return json.load(fh)\n",
        )
        assert diags == []


class TestOwnedReturns:
    def test_helper_returning_an_owned_handle_starts_tracking(self, tmp_path):
        diags = _run(
            tmp_path,
            "def make(path):\n"
            "    fh = open(path)\n"
            "    return fh\n"
            "def use(path):\n"
            "    fh = make(path)\n"
            "    return 1\n",
        )
        assert [d.rule for d in diags] == ["resource-leak"]

    def test_released_owned_return_is_clean(self, tmp_path):
        diags = _run(
            tmp_path,
            "def make(path):\n"
            "    fh = open(path)\n"
            "    return fh\n"
            "def use(path):\n"
            "    fh = make(path)\n"
            "    fh.close()\n"
            "    return 1\n",
        )
        assert diags == []

    def test_helper_itself_is_clean_when_it_returns_ownership(self, tmp_path):
        # make() hands the handle out via ``return`` — an escape, not a
        # leak, exactly as before.
        diags = _run(
            tmp_path,
            "def make(path):\n"
            "    fh = open(path)\n"
            "    return fh\n",
        )
        assert diags == []

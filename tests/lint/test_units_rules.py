"""Units-discipline rules: suffix presence and family compatibility."""

from __future__ import annotations

import pytest


class TestUnitSuffix:
    def test_bare_duration_param_flagged(self, linter):
        findings = linter.findings(
            """
            def simulate(duration: float):
                return duration * 2
            """,
            rel="repro/sim/run.py",
        )
        assert [d.rule for d in findings] == ["unit-suffix"]
        assert "time" in findings[0].message

    def test_suffixed_params_ok(self, linter):
        names = linter.rule_names(
            """
            def simulate(duration_s: float, frame_rate_hz: float, distance_m: float):
                return duration_s * frame_rate_hz * distance_m
            """,
            rel="repro/sim/run.py",
        )
        assert names == []

    def test_dataclass_field_flagged(self, linter):
        names = linter.rule_names(
            """
            from dataclasses import dataclass

            @dataclass
            class Config:
                rate: float = 1.0
            """,
            rel="repro/physio/config.py",
        )
        assert names == ["unit-suffix"]

    def test_int_quantity_not_flagged(self, linter):
        # frame_rate_div is a divider (a count), not a physical float.
        names = linter.rule_names(
            """
            from dataclasses import dataclass

            @dataclass
            class Config:
                frame_rate_div: int = 4
            """,
            rel="repro/hardware/config.py",
        )
        assert names == []

    @pytest.mark.parametrize(
        "field",
        [
            "duration_sigmas: float = 8.0",
            "interval_cv: float = 0.5",
            "rate_jitter_frac: float = 0.05",
            "rate_per_min: float = 17.0",
            "backoff_frames: float = 10.0",
        ],
    )
    def test_dimensionless_suffixes_ok(self, linter, field):
        names = linter.rule_names(
            f"""
            from dataclasses import dataclass

            @dataclass
            class Config:
                {field}
            """,
            rel="repro/physio/config.py",
        )
        assert names == []

    def test_elevation_needs_angle_suffix(self, linter):
        findings = linter.findings(
            """
            def aim(elevation: float = 10.0):
                return elevation
            """,
            rel="repro/rf/aim.py",
        )
        assert [d.rule for d in findings] == ["unit-suffix"]
        assert "angle" in findings[0].message


class TestUnitMismatch:
    def test_hz_into_seconds_keyword_flagged(self, linter):
        findings = linter.findings(
            """
            def f(window_s: float = 1.0):
                return window_s

            def g(frame_rate_hz: float):
                return f(window_s=frame_rate_hz)
            """,
            rel="repro/core/mix.py",
        )
        assert [d.rule for d in findings] == ["unit-mismatch"]
        assert "frequency" in findings[0].message and "time" in findings[0].message

    def test_same_family_keyword_ok(self, linter):
        names = linter.rule_names(
            """
            def f(window_s: float = 1.0):
                return window_s

            def g(duration_s: float):
                return f(window_s=duration_s)
            """,
            rel="repro/core/mix.py",
        )
        assert names == []

    def test_converted_expression_ok(self, linter):
        # 1/rate_hz is a BinOp, not a suffixed name: explicit conversion passes.
        names = linter.rule_names(
            """
            def g(rate_hz: float):
                period_s = 1.0 / rate_hz
                return period_s
            """,
            rel="repro/core/mix.py",
        )
        assert names == []

    def test_assignment_mismatch_flagged(self, linter):
        names = linter.rule_names(
            """
            def g(rate_hz: float):
                period_s = rate_hz
                return period_s
            """,
            rel="repro/core/mix.py",
        )
        assert names == ["unit-mismatch"]

    def test_single_letter_names_do_not_bind_units(self, linter):
        # A bare `m` or `s` is an ordinary variable, not a metres claim.
        names = linter.rule_names(
            """
            def g(time_s: float):
                s = time_s
                m = s
                return m
            """,
            rel="repro/core/mix.py",
        )
        assert names == []

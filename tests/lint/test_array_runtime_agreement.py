"""Declared array contracts vs. the kernels they describe, at runtime.

The static rules trust the ``Shape:`` blocks and shape pragmas on the
batched DSP kernels. These property tests close the loop: for
Hypothesis-chosen sizes, bind the contract's symbolic dims to concrete
values, run the real kernel, and assert the result honours the declared
return shape (and never narrows the input dtype). A contract the kernel
does not actually keep would make every interprocedural finding built
on it a lie.
"""

from __future__ import annotations

import ast
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.filters import CascadingFilter, FilterScratch, fir_filter_rows
from repro.core.preprocess import Preprocessor
from repro.lint.callgraph import extract_module_facts

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _contracts(rel: str, parts: tuple[str, ...], qualname: str):
    source = (REPO_SRC / rel).read_text(encoding="utf-8")
    facts = extract_module_facts(parts, ast.parse(source), source)
    fn = facts.functions[qualname]
    assert fn.array_unresolved == ()
    return fn.array_contracts


FIR = _contracts("dsp/filters.py", ("dsp", "filters"), "fir_filter_rows")
APPLY_ROWS = _contracts(
    "dsp/filters.py", ("dsp", "filters"), "CascadingFilter.apply_rows"
)
DENOISE = _contracts(
    "core/preprocess.py", ("core", "preprocess"), "Preprocessor.denoise_block"
)


def _bound(dims: tuple[str, ...], binding: dict[str, int]) -> tuple[int, ...]:
    """Concrete shape a symbolic contract demands under ``binding``."""
    assert all(dim in binding for dim in dims), (dims, binding)
    return tuple(binding[dim] for dim in dims)


class TestContractsDeclareWhatWeTest:
    """The facts layer sees the contracts these tests exercise — if an
    annotation is reworded out of existence, fail here, loudly, instead
    of silently testing nothing."""

    def test_fir_filter_rows(self):
        assert FIR["rows"][0] == ("N", "R")
        assert FIR["taps"][0] == ("T",)
        assert FIR["out"][0] == ("N", "R")
        assert FIR["return"][0] == ("N", "R")

    def test_apply_rows_and_denoise_block(self):
        assert APPLY_ROWS["rows"][0] == ("N", "R")
        assert APPLY_ROWS["return"][0] == ("N", "R")
        assert DENOISE["frames"][0] == ("N", "R")
        assert DENOISE["return"][0] == ("N", "R")


@st.composite
def _blocks(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    r = draw(st.integers(min_value=16, max_value=96))
    complex_valued = draw(st.booleans())
    base = np.linspace(-1.0, 1.0, n * r).reshape(n, r)
    rows = base * (1.0 + 0.5j) if complex_valued else base
    return n, r, rows


@settings(max_examples=25, deadline=None)
@given(block=_blocks(), t=st.integers(min_value=1, max_value=7))
def test_fir_filter_rows_keeps_its_contract(block, t):
    n, r, rows = block
    taps = np.hamming(2 * t + 1)
    taps /= taps.sum()
    binding = {"N": n, "R": r, "T": taps.shape[0]}
    assert taps.shape == _bound(FIR["taps"][0], binding)

    result = fir_filter_rows(rows, taps, FilterScratch())
    assert result.shape == _bound(FIR["return"][0], binding)
    assert np.iscomplexobj(result) == np.iscomplexobj(rows)

    out = np.empty_like(rows)
    assert out.shape == _bound(FIR["out"][0], binding)
    returned = fir_filter_rows(rows, taps, FilterScratch(), out=out)
    assert returned is out


@settings(max_examples=25, deadline=None)
@given(block=_blocks())
def test_apply_rows_keeps_its_contract(block):
    n, r, rows = block
    binding = {"N": n, "R": r}
    result = CascadingFilter(fir_order=6, smooth_window=4).apply_rows(rows)
    assert result.shape == _bound(APPLY_ROWS["return"][0], binding)
    assert np.iscomplexobj(result) == np.iscomplexobj(rows)


@settings(max_examples=25, deadline=None)
@given(block=_blocks())
def test_denoise_block_keeps_its_contract(block):
    n, r, rows = block
    binding = {"N": n, "R": r}
    result = Preprocessor().denoise_block(rows)
    assert result.shape == _bound(DENOISE["return"][0], binding)
    assert np.iscomplexobj(result) == np.iscomplexobj(rows)

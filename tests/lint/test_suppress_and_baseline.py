"""Inline suppression pragmas and the baseline round-trip."""

from __future__ import annotations

from pathlib import Path

from repro.lint import Baseline, lint_paths
from repro.lint.suppress import scan_pragmas

_DIRTY = """
import time

def f():
    return time.time()
"""

_DIRTY_SUPPRESSED = """
import time

def f():
    return time.time()  # reprolint: disable=wall-clock
"""


class TestPragmaParsing:
    def test_disable_list(self):
        pragmas, errors = scan_pragmas("x = 1  # reprolint: disable=rule-a,rule-b\n")
        assert errors == []
        assert pragmas[1].suppresses("rule-a")
        assert pragmas[1].suppresses("rule-b")
        assert not pragmas[1].suppresses("rule-c")

    def test_disable_all(self):
        pragmas, _ = scan_pragmas("x = 1  # reprolint: disable=all\n")
        assert pragmas[1].suppresses("anything")

    def test_guarded_by_and_unguarded_ok(self):
        pragmas, errors = scan_pragmas(
            "a = 1  # reprolint: guarded-by(_lock)\nb = 2  # reprolint: unguarded-ok\n"
        )
        assert errors == []
        assert pragmas[1].guarded_by == ("_lock",)
        assert pragmas[2].unguarded_ok

    def test_pragma_inside_string_ignored(self):
        pragmas, errors = scan_pragmas('x = "# reprolint: disable=all"\n')
        assert pragmas == {} and errors == []

    def test_unknown_pragma_is_an_error(self):
        _, errors = scan_pragmas("x = 1  # reprolint: dissable=wall-clock\n")
        assert len(errors) == 1
        assert "dissable" in errors[0].detail

    def test_malformed_guarded_by_is_an_error(self):
        _, errors = scan_pragmas("x = 1  # reprolint: guarded-by(\n")
        assert len(errors) == 1


class TestInlineSuppression:
    def test_disable_pragma_suppresses(self, linter):
        result = linter.lint(_DIRTY_SUPPRESSED, rel="repro/sim/clock.py")
        assert result.diagnostics == []
        assert result.suppressed == 1

    def test_without_pragma_finding_reported(self, linter):
        result = linter.lint(_DIRTY, rel="repro/sim/clock.py")
        assert [d.rule for d in result.diagnostics] == ["wall-clock"]

    def test_disable_wrong_rule_does_not_suppress(self, linter):
        result = linter.lint(
            """
            import time

            def f():
                return time.time()  # reprolint: disable=no-assert
            """,
            rel="repro/sim/clock.py",
        )
        assert [d.rule for d in result.diagnostics] == ["wall-clock"]

    def test_bad_pragma_is_reported_and_not_self_suppressible(self, linter):
        result = linter.lint(
            "x = 1  # reprolint: not-a-thing disable=bad-pragma\n",
            rel="repro/sim/meta.py",
        )
        assert [d.rule for d in result.diagnostics] == ["bad-pragma"]


class TestBaseline:
    def test_round_trip(self, linter, tmp_path: Path):
        # First run: finding reported.
        result = linter.lint(_DIRTY, rel="repro/sim/clock.py")
        assert len(result.diagnostics) == 1

        # Acknowledge it; the same run against the baseline is clean.
        baseline = Baseline.from_diagnostics(result.diagnostics)
        path = tmp_path / ".reprolint.json"
        baseline.save(path)
        reloaded = Baseline.load(path)
        assert reloaded.entries == baseline.entries

        again = linter.lint(_DIRTY, rel="repro/sim/clock.py", baseline=reloaded)
        assert again.diagnostics == []
        assert again.baselined == 1
        assert again.stale_baseline == []

    def test_new_findings_still_fail(self, linter):
        result = linter.lint(_DIRTY, rel="repro/sim/clock.py")
        baseline = Baseline.from_diagnostics(result.diagnostics)
        dirtier = _DIRTY + "\n\ndef g():\n    assert True\n"
        rerun = linter.lint(dirtier, rel="repro/sim/clock.py", baseline=baseline)
        assert [d.rule for d in rerun.diagnostics] == ["no-assert"]
        assert rerun.baselined == 1

    def test_fixed_finding_goes_stale(self, linter):
        result = linter.lint(_DIRTY, rel="repro/sim/clock.py")
        baseline = Baseline.from_diagnostics(result.diagnostics)
        clean = linter.lint("x = 1\n", rel="repro/sim/clock.py", baseline=baseline)
        assert clean.diagnostics == []
        assert clean.baselined == 0
        assert len(clean.stale_baseline) == 1

    def test_line_moves_do_not_invalidate_baseline(self, linter):
        result = linter.lint(_DIRTY, rel="repro/sim/clock.py")
        baseline = Baseline.from_diagnostics(result.diagnostics)
        shifted = "# a new leading comment\n" + _DIRTY
        rerun = linter.lint(shifted, rel="repro/sim/clock.py", baseline=baseline)
        assert rerun.diagnostics == []
        assert rerun.baselined == 1

    def test_missing_file_is_empty(self, tmp_path: Path):
        assert Baseline.load(tmp_path / "nope.json").entries == {}

    def test_malformed_file_rejected(self, tmp_path: Path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"entries": {"k": -1}, "version": 1}')
        try:
            Baseline.load(bad)
        except ValueError as exc:
            assert "malformed" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_counted_entries_absorb_exactly_n(self, linter):
        two = (
            "import time\n\n"
            "def f():\n    return time.time()\n\n"
            "def g():\n    return time.time()\n"
        )
        result = linter.lint(two, rel="repro/sim/clock.py")
        assert len(result.diagnostics) == 2
        baseline = Baseline.from_diagnostics(result.diagnostics)
        assert list(baseline.entries.values()) == [2]

        three = two + "\n\ndef h():\n    return time.time()\n"
        rerun = linter.lint(three, rel="repro/sim/clock.py", baseline=baseline)
        assert len(rerun.diagnostics) == 1
        assert rerun.baselined == 2

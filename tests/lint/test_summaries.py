"""Bottom-up summary propagation and summary-store caching tests."""

from __future__ import annotations

import ast

from repro.lint.callgraph import ModuleFacts, Project, extract_module_facts
from repro.lint.summaries import compute_summaries, digest_of, load_project


def _summaries(**modules: str):
    built: dict[str, ModuleFacts] = {}
    for spec, source in modules.items():
        parts = tuple(spec.split("__"))
        facts = extract_module_facts(parts, ast.parse(source))
        built[facts.dotted] = facts
    return compute_summaries(Project(built))


class TestMayBlock:
    def test_direct_primitive_and_leaf_site(self):
        summaries = _summaries(
            sim__mod="import time\ndef f():\n    time.sleep(1)\n"
        )
        summary = summaries["repro.sim.mod.f"]
        assert summary.may_block
        assert summary.block_primitive == "time.sleep"
        assert summary.block_site == "repro.sim.mod:3"

    def test_propagates_through_helper_chain_naming_the_leaf(self):
        summaries = _summaries(
            sim__mod=(
                "import time\n"
                "def leaf():\n    time.sleep(1)\n"
                "def middle():\n    leaf()\n"
                "def top():\n    middle()\n"
            )
        )
        top = summaries["repro.sim.mod.top"]
        assert top.may_block
        assert top.block_primitive == "time.sleep"
        assert top.block_site == "repro.sim.mod:3"  # the leaf, not the hop

    def test_propagates_across_modules(self):
        summaries = _summaries(
            sim__helper="import subprocess\ndef run():\n    subprocess.run(['x'])\n",
            sim__mod=(
                "from repro.sim.helper import run\n"
                "def top():\n    run()\n"
            ),
        )
        assert summaries["repro.sim.mod.top"].may_block

    def test_executor_handoff_does_not_taint(self):
        # ``run_in_executor(None, blocking_helper)`` passes a *reference*;
        # the caller itself never blocks.
        summaries = _summaries(
            sim__mod=(
                "import asyncio, time\n"
                "def blocking():\n    time.sleep(1)\n"
                "async def top():\n"
                "    loop = asyncio.get_running_loop()\n"
                "    await loop.run_in_executor(None, blocking)\n"
            )
        )
        assert not summaries["repro.sim.mod.top"].may_block

    def test_file_method_on_typed_receiver_blocks(self):
        summaries = _summaries(
            sim__mod=(
                "def f(path):\n"
                "    fh = open(path)\n"
                "    fh.read()\n"
                "    fh.close()\n"
            )
        )
        assert summaries["repro.sim.mod.f"].may_block

    def test_cycle_reaches_fixpoint(self):
        summaries = _summaries(
            sim__mod=(
                "import time\n"
                "def a(n):\n    b(n)\n"
                "def b(n):\n    a(n)\n    time.sleep(1)\n"
            )
        )
        assert summaries["repro.sim.mod.a"].may_block
        assert summaries["repro.sim.mod.b"].may_block


class TestOwnership:
    def test_consume_escape_and_kept_params(self):
        summaries = _summaries(
            sim__mod=(
                "_box = []\n"
                "def finish(h):\n    h.close()\n"
                "def stash(h):\n    _box.append(h)\n"
                "def peek(h):\n    h.seek(0)\n"
            )
        )
        assert summaries["repro.sim.mod.finish"].consumes == frozenset({"h"})
        assert summaries["repro.sim.mod.stash"].escapes == frozenset({"h"})
        peek = summaries["repro.sim.mod.peek"]
        assert "h" not in peek.consumes and "h" not in peek.escapes

    def test_consume_propagates_through_a_pass(self):
        summaries = _summaries(
            sim__mod=(
                "def finish(h):\n    h.close()\n"
                "def delegate(handle):\n    finish(handle)\n"
            )
        )
        assert summaries["repro.sim.mod.delegate"].consumes == frozenset({"handle"})

    def test_star_args_pass_escapes(self):
        summaries = _summaries(
            sim__mod=(
                "def finish(h):\n    h.close()\n"
                "def blur(h, *rest):\n    finish(*rest)\n"
                "def fuzz(h):\n    finish(*[h])\n"
            )
        )
        # An unmappable hand-off must degrade to escape, never consume.
        assert "h" not in _s(summaries, "blur").consumes
        assert "h" not in _s(summaries, "fuzz").consumes

    def test_returns_owned_directly_and_through_a_helper(self):
        summaries = _summaries(
            sim__mod=(
                "def make(path):\n"
                "    fh = open(path)\n"
                "    return fh\n"
                "def make_indirect(path):\n"
                "    return make(path)\n"
            )
        )
        assert summaries["repro.sim.mod.make"].returns_owned == "file"
        assert summaries["repro.sim.mod.make_indirect"].returns_owned == "file"


def _s(summaries, name):
    return summaries[f"repro.sim.mod.{name}"]


class TestDigestAndStore:
    SOURCES = {
        ("sim", "helper"): b"def leaf():\n    pass\n",
        ("sim", "mod"): (
            b"from repro.sim.helper import leaf\n"
            b"def top():\n    leaf()\n"
        ),
    }

    @staticmethod
    def _parse(display: str, raw: bytes):
        return ast.parse(raw.decode("utf-8"))

    def _load(self, store_dir, sources=None, parse=None):
        sources = sources if sources is not None else self.SOURCES
        entries = [
            ("/".join(parts) + ".py", parts, raw) for parts, raw in sources.items()
        ]
        return load_project(
            entries, store_dir, self._parse if parse is None else parse
        )

    def test_behaviour_edit_changes_the_digest(self):
        base = self._load(None)
        edited = dict(self.SOURCES)
        edited[("sim", "helper")] = b"import time\ndef leaf():\n    time.sleep(1)\n"
        changed = self._load(None, sources=edited)
        assert base.digest != changed.digest

    def test_comment_edit_keeps_the_digest(self):
        base = self._load(None)
        edited = dict(self.SOURCES)
        edited[("sim", "helper")] = b"# a comment\ndef leaf():\n    pass\n"
        same = self._load(None, sources=edited)
        assert base.digest == same.digest

    def test_warm_store_skips_parsing_entirely(self, tmp_path):
        calls = []

        def counting_parse(display: str, raw: bytes):
            calls.append(display)
            return ast.parse(raw.decode("utf-8"))

        cold = self._load(tmp_path, parse=counting_parse)
        assert len(calls) == 2
        warm = self._load(tmp_path, parse=counting_parse)
        assert len(calls) == 2  # every file served from the facts store
        assert warm.digest == cold.digest
        assert warm.summaries == cold.summaries

    def test_single_file_edit_reparses_only_that_file(self, tmp_path):
        calls: list[str] = []

        def counting_parse(display: str, raw: bytes):
            calls.append(display)
            return ast.parse(raw.decode("utf-8"))

        self._load(tmp_path, parse=counting_parse)
        calls.clear()
        edited = dict(self.SOURCES)
        edited[("sim", "mod")] = (
            b"from repro.sim.helper import leaf\n"
            b"def top():\n    leaf()\n    leaf()\n"
        )
        self._load(tmp_path, sources=edited, parse=counting_parse)
        assert calls == ["sim/mod.py"]

    def test_digest_is_deterministic(self):
        assert self._load(None).digest == self._load(None).digest
        assert digest_of({}) == digest_of({})

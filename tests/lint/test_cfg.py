"""CFG builder tests: targeted shapes plus the whole-tree self-check.

The self-check is an acceptance criterion: every function in ``src/``
must build a CFG with no statement falling back to "unsupported", and
both solver instances must reach a fixpoint without tripping the
iteration cap. A new statement form entering the tree therefore fails
tests before it silently degrades the dataflow rules.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint.cfg import ArgsBind, build_cfg, iter_functions
from repro.lint.dataflow import Liveness, ReachingDefinitions, solve


def _cfg_of(source: str, name: str = "f"):
    tree = ast.parse(textwrap.dedent(source))
    functions = dict(iter_functions(tree))
    return build_cfg(functions[name], name)


class TestShapes:
    def test_straight_line_is_one_block(self):
        cfg = _cfg_of(
            """
            def f(x):
                y = x + 1
                return y
            """
        )
        reachable = cfg.reachable()
        assert cfg.entry in reachable and cfg.exit in reachable
        # entry args-bind element exists
        entry_elements = cfg.blocks[cfg.entry].elements
        assert any(isinstance(e, ArgsBind) for e in entry_elements)

    def test_if_else_joins(self):
        cfg = _cfg_of(
            """
            def f(x):
                if x > 0:
                    y = 1
                else:
                    y = 2
                return y
            """
        )
        # Both arms reach the return: the block holding `return y` has
        # two predecessors.
        ret_blocks = [
            b
            for b in cfg.blocks
            if any(isinstance(e, ast.Return) for e in b.elements)
        ]
        assert len(ret_blocks) == 1
        assert len(ret_blocks[0].pred) == 2

    def test_while_has_back_edge(self):
        cfg = _cfg_of(
            """
            def f(n):
                i = 0
                while i < n:
                    i = i + 1
                return i
            """
        )
        assert any(e.dst <= e.src for b in cfg.blocks for e in b.succ)

    def test_while_true_without_break_makes_after_unreachable(self):
        cfg = _cfg_of(
            """
            def f():
                while True:
                    pass
                return 1
            """
        )
        reachable = cfg.reachable()
        dead = [
            b
            for b in cfg.blocks
            if b.index not in reachable
            and any(isinstance(e, ast.Return) for e in b.elements)
        ]
        assert dead, "return after while True should be unreachable"

    def test_break_escapes_the_loop(self):
        cfg = _cfg_of(
            """
            def f():
                while True:
                    break
                return 1
            """
        )
        reachable = cfg.reachable()
        ret = [
            b
            for b in cfg.blocks
            if any(isinstance(e, ast.Return) for e in b.elements)
        ]
        assert ret and ret[0].index in reachable

    def test_code_after_return_is_unreachable(self):
        cfg = _cfg_of(
            """
            def f(x):
                return x
                x = 99
            """
        )
        reachable = cfg.reachable()
        dead_assign = [
            b
            for b in cfg.blocks
            if b.index not in reachable
            and any(isinstance(e, ast.Assign) for e in b.elements)
        ]
        assert dead_assign

    def test_try_body_has_except_edge_to_handler(self):
        cfg = _cfg_of(
            """
            def f():
                try:
                    risky()
                except ValueError:
                    return 0
                return 1
            """
        )
        assert any(
            e.kind == "except" for b in cfg.blocks for e in b.succ
        ), "try body should carry an exceptional edge"

    def test_finally_runs_on_both_paths(self):
        # The `done = True` element must sit on every entry→exit path:
        # removing the finally block's predecessors would disconnect exit.
        cfg = _cfg_of(
            """
            def f(x):
                done = False
                try:
                    if x:
                        return 1
                finally:
                    done = True
                return 2
            """
        )
        finally_blocks = {
            b.index
            for b in cfg.blocks
            if any(
                isinstance(e, ast.Assign)
                and isinstance(e.targets[0], ast.Name)
                and e.targets[0].id == "done"
                and isinstance(e.value, ast.Constant)
                and e.value.value is True
                for e in b.elements
            )
        }
        assert finally_blocks
        # Both the early return and the fall-through route through it.
        preds = {
            e.src for i in finally_blocks for e in cfg.blocks[i].pred
        }
        assert len(preds) >= 2

    def test_match_statement_binds_captures(self):
        cfg = _cfg_of(
            """
            def f(cmd):
                match cmd:
                    case ("go", speed):
                        return speed
                    case _:
                        return 0
            """
        )
        assert cfg.unsupported == []
        assert cfg.reachable()

    def test_with_statement_supported(self):
        cfg = _cfg_of(
            """
            def f(lock):
                with lock:
                    x = 1
                return x
            """
        )
        assert cfg.unsupported == []

    def test_nested_functions_get_own_cfgs_and_closure_names(self):
        source = """
            def f(x):
                def g():
                    return x
                return g
        """
        tree = ast.parse(textwrap.dedent(source))
        names = [qualname for qualname, _ in iter_functions(tree)]
        assert "f" in names and any("g" in n for n in names)
        cfg = _cfg_of(source, "f")
        assert "x" in cfg.closure_names


class TestWholeTreeSelfCheck:
    def test_every_src_function_builds_and_converges(self, repo_root):
        src = repo_root / "src"
        checked = 0
        for path in sorted(src.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for qualname, fn in iter_functions(tree):
                cfg = build_cfg(fn, qualname)
                assert cfg.unsupported == [], (
                    f"{path}:{qualname} hit unsupported statements: "
                    f"{[type(s).__name__ for s in cfg.unsupported]}"
                )
                reaching = solve(cfg, ReachingDefinitions(cfg))
                liveness = solve(cfg, Liveness())
                assert reaching.converged, f"{path}:{qualname} reaching-defs cap"
                assert liveness.converged, f"{path}:{qualname} liveness cap"
                checked += 1
        # The tree is not trivial: hundreds of functions went through.
        assert checked > 400

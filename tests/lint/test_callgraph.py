"""Call-graph extraction and resolution unit tests."""

from __future__ import annotations

import ast

from repro.lint.callgraph import (
    ModuleFacts,
    Project,
    extract_module_facts,
)


def _facts(source: str, module=("sim", "mod")) -> ModuleFacts:
    return extract_module_facts(tuple(module), ast.parse(source))


def _project(**modules: str) -> Project:
    """Build a project from ``{"sim.mod": source}``-style kwargs (dots
    spelled as double underscores in the kwarg name)."""
    built: dict[str, ModuleFacts] = {}
    for spec, source in modules.items():
        parts = tuple(spec.split("__"))
        facts = _facts(source, parts)
        built[facts.dotted] = facts
    return Project(built)


class TestExtraction:
    def test_call_facts_record_await_and_discard(self):
        facts = _facts(
            "import asyncio\n"
            "async def f():\n"
            "    await asyncio.sleep(1)\n"
            "    helper()\n"
            "    x = helper()\n"
        )
        calls = {".".join(c.parts): c for c in facts.functions["f"].calls}
        assert calls["asyncio.sleep"].awaited
        assert not calls["asyncio.sleep"].discarded
        discarded = [c for c in facts.functions["f"].calls if c.discarded]
        assert len(discarded) == 1 and discarded[0].parts == ("helper",)

    def test_calls_are_in_source_order(self):
        facts = _facts("def f():\n    a()\n    b()\n    c()\n")
        assert [c.parts[0] for c in facts.functions["f"].calls] == ["a", "b", "c"]

    def test_nested_function_calls_belong_to_the_nested_facts(self):
        facts = _facts(
            "def outer():\n"
            "    def inner():\n"
            "        leaf()\n"
            "    inner()\n"
        )
        assert [c.parts for c in facts.functions["outer"].calls] == [("inner",)]
        assert [c.parts for c in facts.functions["outer.<locals>.inner"].calls] == [
            ("leaf",)
        ]

    def test_class_attr_types_from_annotations_and_constructors(self):
        facts = _facts(
            "import threading\n"
            "class C:\n"
            "    count: int\n"
            "    def __init__(self, path):\n"
            "        self._lock = threading.Lock()\n"
            "        self._fh = open(path)\n"
            "        self._sink = print\n"
        )
        cls = facts.classes["C"]
        assert cls.attr_types["_lock"] == "threading.Lock"
        assert cls.attr_types["_fh"] == "file"
        assert "_sink" in cls.attrs and "_sink" not in cls.attr_types
        assert cls.has_init

    def test_relative_import_resolves_against_the_package(self):
        facts = _facts(
            "from .helper import leaf\nfrom ..store import record\n",
            ("gateway", "mod"),
        )
        assert facts.imports["leaf"] == "repro.gateway.helper.leaf"
        assert facts.imports["record"] == "repro.store.record"

    def test_json_round_trip_is_lossless(self):
        facts = _facts(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    async def go(self, x):\n"
            "        async with self._aio:\n"
            "            await self.pump(x)\n"
            "        return x\n"
        )
        assert ModuleFacts.from_json(facts.to_json()) == facts


class TestResolution:
    def test_module_function_and_method_resolve_internal(self):
        project = _project(
            sim__mod=(
                "def leaf():\n    pass\n"
                "class C:\n"
                "    def m(self):\n"
                "        leaf()\n"
                "        self.n()\n"
                "    def n(self):\n"
                "        pass\n"
            )
        )
        resolved = project.resolved_calls("repro.sim.mod.C.m")
        assert [(r.category, r.target) for r in resolved] == [
            ("internal", "repro.sim.mod.leaf"),
            ("internal", "repro.sim.mod.C.n"),
        ]
        assert resolved[1].bound_receiver

    def test_cross_module_import_resolves(self):
        project = _project(
            sim__helper="def leaf():\n    pass\n",
            sim__mod=(
                "from repro.sim.helper import leaf\n"
                "def f():\n    leaf()\n"
            ),
        )
        (res,) = project.resolved_calls("repro.sim.mod.f")
        assert (res.category, res.target) == ("internal", "repro.sim.helper.leaf")

    def test_receiver_chain_types_through_attributes(self):
        project = _project(
            sim__mod=(
                "class Inner:\n"
                "    def leaf(self):\n"
                "        pass\n"
                "class Outer:\n"
                "    def __init__(self):\n"
                "        self.inner = Inner()\n"
                "    def go(self):\n"
                "        self.inner.leaf()\n"
            )
        )
        (res,) = project.resolved_calls("repro.sim.mod.Outer.go")
        assert (res.category, res.target) == ("internal", "repro.sim.mod.Inner.leaf")

    def test_dataclass_constructor_is_internal_ctor(self):
        project = _project(
            sim__mod=(
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                "class Point:\n"
                "    x: int\n"
                "def f():\n    return Point(1)\n"
            )
        )
        (res,) = project.resolved_calls("repro.sim.mod.f")
        assert (res.category, res.target) == ("internal-ctor", "repro.sim.mod.Point")

    def test_super_call_binds_to_the_base(self):
        project = _project(
            sim__mod=(
                "class Base:\n"
                "    def __init__(self):\n"
                "        pass\n"
                "class Child(Base):\n"
                "    def __init__(self):\n"
                "        super().__init__()\n"
            )
        )
        resolved = project.resolved_calls("repro.sim.mod.Child.__init__")
        targets = {r.target for r in resolved}
        assert "repro.sim.mod.Base.__init__" in targets

    def test_stored_callable_attribute_is_dynamic_not_unresolved(self):
        project = _project(
            sim__mod=(
                "class C:\n"
                "    def __init__(self, fn):\n"
                "        self._fn = fn\n"
                "    def go(self):\n"
                "        self._fn()\n"
            )
        )
        (res,) = project.resolved_calls("repro.sim.mod.C.go")
        assert res.category == "dynamic"
        assert project.unresolved_calls() == []

    def test_missing_method_on_internal_class_is_unresolved(self):
        project = _project(
            sim__mod=(
                "class C:\n"
                "    def m(self):\n"
                "        self.never_defined()\n"
            )
        )
        (res,) = project.resolved_calls("repro.sim.mod.C.m")
        assert res.category == "unresolved"
        assert len(project.unresolved_calls()) == 1

    def test_external_and_unseen_categories(self):
        project = _project(
            sim__mod=(
                "import time\n"
                "from repro.sim.absent import ghost\n"
                "def f():\n"
                "    time.sleep(1)\n"
                "    ghost()\n"
            )
        )
        categories = {
            r.target: r.category for r in project.resolved_calls("repro.sim.mod.f")
        }
        assert categories["time.sleep"] == "external"
        assert categories["repro.sim.absent.ghost"] == "unseen"

    def test_sccs_are_callee_first_and_cycle_tolerant(self):
        project = _project(
            sim__mod=(
                "def leaf():\n    pass\n"
                "def a():\n    b()\n    leaf()\n"
                "def b():\n    a()\n"
            )
        )
        components = project.sccs()
        cycle = next(c for c in components if len(c) == 2)
        assert set(cycle) == {"repro.sim.mod.a", "repro.sim.mod.b"}
        leaf_at = next(
            i for i, c in enumerate(components) if c == ["repro.sim.mod.leaf"]
        )
        cycle_at = components.index(cycle)
        assert leaf_at < cycle_at

"""Solver and analysis-instance tests on small, hand-checkable CFGs."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.cfg import build_cfg, iter_functions
from repro.lint.dataflow import (
    Liveness,
    MovedNames,
    ReachingDefinitions,
    element_defs_uses,
    solve,
)


def _cfg(source: str, name: str = "f"):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(dict(iter_functions(tree))[name], name)


def _element(source: str):
    """The single statement of a module, as an element."""
    return ast.parse(textwrap.dedent(source)).body[0]


class TestDefsUses:
    def test_simple_assign(self):
        defs, uses = element_defs_uses(_element("y = x + 1"))
        assert defs == {"y"} and uses == {"x"}

    def test_tuple_target_and_starred(self):
        defs, _ = element_defs_uses(_element("a, (b, *c) = v"))
        assert defs == {"a", "b", "c"}

    def test_augassign_uses_its_own_target(self):
        defs, uses = element_defs_uses(_element("total += x"))
        assert defs == {"total"} and uses == {"total", "x"}

    def test_walrus_inside_expression(self):
        defs, uses = element_defs_uses(_element("print((n := len(items)))"))
        assert "n" in defs and "items" in uses

    def test_attribute_target_binds_nothing(self):
        defs, uses = element_defs_uses(_element("obj.field = x"))
        assert defs == frozenset() and uses == {"obj", "x"}

    def test_import_binds_aliases(self):
        defs, _ = element_defs_uses(_element("import numpy as np"))
        assert defs == {"np"}
        defs, _ = element_defs_uses(_element("from a.b import c as d, e"))
        assert defs == {"d", "e"}

    def test_nested_scope_loads_count_as_uses(self):
        defs, uses = element_defs_uses(_element("h = lambda: x + 1"))
        assert defs == {"h"} and "x" in uses


class TestReachingDefinitions:
    def test_branches_merge_definition_sites(self):
        cfg = _cfg(
            """
            def f(c):
                if c:
                    y = 1
                else:
                    y = 2
                return y
            """
        )
        analysis = ReachingDefinitions(cfg)
        solution = solve(cfg, analysis)
        ret_block = next(
            b for b in cfg.blocks if any(isinstance(e, ast.Return) for e in b.elements)
        )
        state = solution.inputs[ret_block.index]
        sites = state["y"]
        assert len(sites) == 2  # both arms reach the join
        values = {
            analysis.element_at(site).value.value for site in sites  # type: ignore[union-attr]
        }
        assert values == {1, 2}

    def test_rebinding_is_a_strong_update(self):
        cfg = _cfg(
            """
            def f():
                y = 1
                y = 2
                return y
            """
        )
        analysis = ReachingDefinitions(cfg)
        solution = solve(cfg, analysis)
        state = solution.outputs[cfg.exit] or solution.inputs[cfg.exit]
        sites = state["y"]
        assert len(sites) == 1
        element = analysis.element_at(next(iter(sites)))
        assert isinstance(element, ast.Assign) and element.value.value == 2  # type: ignore[union-attr]


class TestLiveness:
    def test_dead_store_is_not_live(self):
        cfg = _cfg(
            """
            def f(x):
                y = x
                y = x + 1
                return y
            """
        )
        solution = solve(cfg, Liveness())
        block = next(
            b for b in cfg.blocks if any(isinstance(e, ast.Assign) for e in b.elements)
        )
        states = solution.element_states(block.index)
        first_assign_index = next(
            i for i, e in enumerate(block.elements) if isinstance(e, ast.Assign)
        )
        assert "y" not in states[first_assign_index]

    def test_loop_carried_value_stays_live(self):
        cfg = _cfg(
            """
            def f(n):
                i = 0
                while i < n:
                    i = i + 1
                return i
            """
        )
        solution = solve(cfg, Liveness())
        for block in cfg.blocks:
            for element, live_after in zip(block.elements, solution.element_states(block.index)):
                if isinstance(element, ast.Assign):
                    assert "i" in live_after  # read by the loop test or return

    def test_closure_names_live_at_exit(self):
        cfg = _cfg(
            """
            def f(x):
                acc = 0
                def g():
                    return acc
                return g
            """
        )
        solution = solve(cfg, Liveness())
        assert "acc" in solution.inputs[cfg.exit]


class TestMovedNames:
    def test_move_then_rebind_clears(self):
        cfg = _cfg(
            """
            def f(pool, make):
                t = make()
                pool.adopt(t)
                t = make()
                t.check()
            """
        )
        solution = solve(cfg, MovedNames({3: ("t",)}))
        # After the rebinding on line 4 the pair is gone everywhere later.
        final = solution.inputs[cfg.exit]
        assert final == frozenset()

    def test_move_reaches_exit_without_rebind(self):
        cfg = _cfg(
            """
            def f(pool, make):
                t = make()
                pool.adopt(t)
            """
        )
        solution = solve(cfg, MovedNames({3: ("t",)}))
        assert ("t", 3) in solution.inputs[cfg.exit]


class TestSolverBookkeeping:
    def test_converges_with_tight_cap_reported(self):
        cfg = _cfg(
            """
            def f(n):
                i = 0
                while i < n:
                    i = i + 1
                return i
            """
        )
        full = solve(cfg, ReachingDefinitions(cfg))
        assert full.converged and full.steps > 0
        starved = solve(cfg, ReachingDefinitions(cfg), max_steps=1)
        assert not starved.converged

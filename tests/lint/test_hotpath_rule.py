"""hotpath-alloc: per-call numpy allocations in marked hot-path kernels."""

import pytest

HOT_DEF = "def kernel(rows, scratch):  # reprolint: hotpath"


class TestHotpathAlloc:
    @pytest.mark.parametrize("call", ["np.zeros", "np.empty", "np.concatenate"])
    def test_alloc_in_marked_function_flagged(self, linter, call):
        names = linter.rule_names(
            f"""
            import numpy as np

            {HOT_DEF}
                buf = {call}((4, 4))
                return buf
            """,
            rel="repro/dsp/kernels.py",
        )
        assert names == ["hotpath-alloc"]

    def test_numpy_spelling_flagged(self, linter):
        names = linter.rule_names(
            """
            import numpy

            def kernel(rows):  # reprolint: hotpath
                return numpy.empty(3)
            """,
            rel="repro/dsp/kernels.py",
        )
        assert names == ["hotpath-alloc"]

    def test_core_batched_in_scope(self, linter):
        names = linter.rule_names(
            """
            import numpy as np

            def fuse(blocks):  # reprolint: hotpath
                return np.concatenate(blocks)
            """,
            rel="repro/core/batched.py",
        )
        assert names == ["hotpath-alloc"]

    def test_unmarked_function_not_flagged(self, linter):
        names = linter.rule_names(
            """
            import numpy as np

            def cold(rows):
                return np.zeros_like(rows) + np.empty(3)
            """,
            rel="repro/dsp/kernels.py",
        )
        assert "hotpath-alloc" not in names

    def test_marker_outside_scope_is_inert(self, linter):
        names = linter.rule_names(
            """
            import numpy as np

            def service_step(x):  # reprolint: hotpath
                return np.empty(3)
            """,
            rel="repro/fleet/worker.py",
        )
        assert "hotpath-alloc" not in names

    def test_nonalloc_numpy_calls_allowed(self, linter):
        names = linter.rule_names(
            """
            import numpy as np

            def kernel(rows, out):  # reprolint: hotpath
                np.multiply(rows, 2.0, out=out)
                return np.convolve(out.reshape(-1), out[0], mode="valid")
            """,
            rel="repro/dsp/kernels.py",
        )
        assert "hotpath-alloc" not in names

    def test_nested_function_allocation_flagged(self, linter):
        names = linter.rule_names(
            """
            import numpy as np

            def kernel(rows):  # reprolint: hotpath
                def inner():
                    return np.zeros(3)
                return inner()
            """,
            rel="repro/dsp/kernels.py",
        )
        assert names == ["hotpath-alloc"]

    def test_disable_pragma_acknowledges_result_buffer(self, linter):
        names = linter.rule_names(
            """
            import numpy as np

            def kernel(rows, out=None):  # reprolint: hotpath
                if out is None:
                    out = np.empty(rows.shape)  # reprolint: disable=hotpath-alloc
                return out
            """,
            rel="repro/dsp/kernels.py",
        )
        assert "hotpath-alloc" not in names

    def test_marked_kernels_in_repo_stay_clean(self, repo_root):
        """The real kernel layer must hold its own invariant."""
        from repro.lint import lint_paths
        from repro.lint.rules.hotpath import HotpathAllocRule

        paths = [
            repo_root / "src" / "repro" / "dsp",
            repo_root / "src" / "repro" / "core" / "batched.py",
        ]
        result = lint_paths(paths, rules=[HotpathAllocRule()], jobs=1, root=repo_root)
        assert [d.rule for d in result.diagnostics] == []

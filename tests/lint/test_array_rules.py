"""Array-contract rule family: domain units, rule gates, near misses.

Every rule gets a true-positive gate (the bug class it exists for) and
a near-miss gate (the closest legal code, which must stay silent) —
the conservative-silence contract is what keeps the committed baseline
empty on the real tree.
"""

from __future__ import annotations

import ast

import pytest

from repro.lint.arrayflow import (
    ShapeEnv,
    bind_dims,
    dims_conflict,
    normalize_dtype,
    parse_docstring_contracts,
)
from repro.lint.callgraph import extract_module_facts
from repro.lint.suppress import ShapeContract, scan_pragmas


# ------------------------------------------------------------------- domain
class TestDtypeNormalisation:
    @pytest.mark.parametrize(
        ("spelling", "expected"),
        [
            ("complex", "complex128"),
            ("np.complex128", "complex128"),
            ("'complex64'", "complex64"),
            ("float", "float64"),
            ("numpy.float32", "float32"),
            ("int", "int64"),
            ("bool_", "bool"),
            ("np.result_type", ""),
            ("object", ""),
        ],
    )
    def test_aliases(self, spelling, expected):
        assert normalize_dtype(spelling) == expected


class TestDimsConflict:
    @pytest.mark.parametrize(
        ("declared", "actual", "verdict"),
        [
            ("N", "N", "ok"),
            ("4", "4", "ok"),
            ("4", "5", "mismatch"),
            ("1", "5", "broadcast"),
            ("4", "1", "broadcast"),
            ("N", "M", "unknown"),
            ("N", "4", "unknown"),
            ("?", "4", "unknown"),
        ],
    )
    def test_verdicts(self, declared, actual, verdict):
        assert dims_conflict(declared, actual) == verdict

    def test_bind_dims_convicts_two_literals_for_one_symbol(self):
        binding: dict[str, str] = {}
        assert bind_dims(binding, ("N", "R"), ("4", "8")) is None
        assert bind_dims(binding, ("N", "R"), ("5", "8")) == "N"

    def test_bind_dims_tolerates_symbolic_rebinding(self):
        binding: dict[str, str] = {}
        assert bind_dims(binding, ("N",), ("n_rows",)) is None
        assert bind_dims(binding, ("N",), ("m_rows",)) is None  # not literal


class TestDocstringContracts:
    def test_block_parses_entries_and_dtype(self):
        contracts, errors = parse_docstring_contracts(
            "Filter rows.\n\nShape:\n    rows: (N, R) complex128\n"
            "    return: (N, R)\n\nTrailing prose.\n"
        )
        assert errors == []
        assert contracts["rows"].dims == ("N", "R")
        assert contracts["rows"].dtype == "complex128"
        assert contracts["return"].dims == ("N", "R")

    def test_malformed_entry_is_an_error_not_a_silent_drop(self):
        contracts, errors = parse_docstring_contracts(
            "Shape:\n    rows: N, R\n"
        )
        assert contracts == {}
        assert errors and "malformed" in errors[0]

    def test_unknown_dtype_is_reported(self):
        _, errors = parse_docstring_contracts(
            "Shape:\n    rows: (N,) quaternion\n"
        )
        assert errors and "quaternion" in errors[0]


class TestShapePragma:
    def test_shape_pragma_round_trip(self):
        pragmas, errors = scan_pragmas(
            "def f(rows):  # reprolint: shape(rows=(N,R),dtype=complex128)\n"
            "    pass\n"
        )
        assert errors == []
        (contract,) = pragmas[1].shapes
        assert contract == ShapeContract("rows", ("N", "R"), "complex128")

    def test_malformed_shape_pragma_is_an_error(self):
        _, errors = scan_pragmas("x = 1  # reprolint: shape(rows=N)\n")
        assert errors and "shape" in errors[0].detail

    def test_alias_safe_pragma(self):
        pragmas, errors = scan_pragmas("def f():  # reprolint: alias-safe\n    pass\n")
        assert errors == []
        assert pragmas[1].alias_safe


class TestShapeEnv:
    def _env(self, body: str, contracts=None) -> ShapeEnv:
        tree = ast.parse(body)
        env = ShapeEnv(contracts if contracts is not None else {})
        env.bind_body(tree.body[0])
        return env

    def test_ctor_slice_transpose_flow(self):
        env = self._env(
            "def f(n, r):\n"
            "    x = np.zeros((n, r), dtype=np.complex128)\n"
            "    head = x[0]\n"
            "    window = x[2:5]\n"
            "    flipped = x.T\n"
            "    mag = np.abs(x)\n"
        )
        assert env.types["x"] == (("n", "r"), "complex128")
        assert env.types["head"] == (("r",), "complex128")
        assert env.types["window"] == (("?", "r"), "complex128")
        assert env.types["flipped"] == (("r", "n"), "complex128")
        assert env.types["mag"] == (("n", "r"), "float64")

    def test_astype_reshape_and_contract_seed(self):
        env = self._env(
            "def f(rows):\n"
            "    y = rows.astype(np.float32)\n"
            "    flat = rows.reshape(-1)\n",
            {"rows": ShapeContract("rows", ("N", "R"), "complex128")},
        )
        assert env.types["y"] == (("N", "R"), "float32")
        assert env.types["flat"] == (("-1",), "complex128")

    def test_unmodelled_rhs_clears_a_binding(self):
        env = self._env(
            "def f(n):\n"
            "    x = np.zeros((n,))\n"
            "    x = mystery(x)\n"
        )
        assert "x" not in env.types


# ---------------------------------------------------------------- extraction
def _facts_of(source: str):
    tree = ast.parse(source)
    return extract_module_facts(("dsp", "mod"), tree, source)


class TestArrayFactExtraction:
    def test_pragma_and_docstring_merge(self):
        facts = _facts_of(
            "def kernel(rows, out):  # reprolint: shape(out=(N,R))\n"
            '    """Do the thing.\n\n'
            "    Shape:\n"
            "        rows: (N, R) complex128\n"
            '    """\n'
            "    return out\n"
        )
        fn = facts.functions["kernel"]
        assert fn.array_contracts["rows"] == (("N", "R"), "complex128")
        assert fn.array_contracts["out"] == (("N", "R"), "")
        assert fn.array_unresolved == ()

    def test_conflicting_sources_are_reported(self):
        facts = _facts_of(
            "def kernel(rows):  # reprolint: shape(rows=(N,R))\n"
            '    """Do the thing.\n\n'
            "    Shape:\n"
            "        rows: (N, R, S)\n"
            '    """\n'
        )
        fn = facts.functions["kernel"]
        assert any("conflicting" in d for d in fn.array_unresolved)

    def test_unknown_parameter_name_is_reported(self):
        facts = _facts_of(
            "def kernel(rows):  # reprolint: shape(cols=(N,))\n    pass\n"
        )
        fn = facts.functions["kernel"]
        assert any("unknown parameter" in d for d in fn.array_unresolved)
        assert "cols" not in fn.array_contracts

    def test_returned_array_is_inferred_without_a_contract(self):
        facts = _facts_of(
            "import numpy as np\n\n"
            "def make(n):\n"
            "    return np.zeros((n, 4), dtype=np.float32)\n"
        )
        assert facts.functions["make"].returned_array == (("n", "4"), "float32")

    def test_markers_reach_the_facts(self):
        facts = _facts_of(
            "def kernel(rows, out=None):  # reprolint: hotpath alias-safe\n"
            "    pass\n"
        )
        fn = facts.functions["kernel"]
        assert fn.hotpath and fn.alias_safe


# -------------------------------------------------------------------- rules
KERNEL = '''
import numpy as np


def kernel(rows, out=None):  # reprolint: shape(rows=(N,R),dtype=float64) shape(out=(N,R))
    """Filter the rows.

    Shape:
        return: (N, R)
    """
    return rows
'''


class TestShapeMismatchRule:
    def test_rank_conflict_fires(self, linter):
        names = linter.rule_names(
            KERNEL + "\ndef bad():\n"
            "    kernel(np.zeros((4, 8, 2)))\n",
            rel="repro/dsp/mod.py",
        )
        assert "shape-mismatch" in names

    def test_broadcast_hazard_fires_on_literal_one(self, linter):
        findings = linter.findings(
            KERNEL + "\ndef bad():\n"
            "    kernel(np.zeros((1, 8)), out=np.zeros((4, 8)))\n",
            rel="repro/dsp/mod.py",
        )
        hazards = [d for d in findings if d.rule == "shape-mismatch"]
        assert hazards and "broadcast" in hazards[0].message

    def test_symbol_bound_two_ways_fires(self, linter):
        names = linter.rule_names(
            KERNEL + "\ndef bad():\n"
            "    kernel(np.zeros((4, 8)), out=np.zeros((5, 8)))\n",
            rel="repro/dsp/mod.py",
        )
        assert "shape-mismatch" in names

    def test_matching_and_symbolic_calls_stay_silent(self, linter):
        names = linter.rule_names(
            KERNEL + "\ndef good(n):\n"
            "    kernel(np.zeros((n, 8)), out=np.zeros((n, 8)))\n"
            "    kernel(np.zeros((4, 8)), out=np.zeros((4, 8)))\n"
            "    kernel(unknown_rows())\n",
            rel="repro/dsp/mod.py",
        )
        assert "shape-mismatch" not in names

    def test_helper_return_flows_through_the_call_graph(self, linter):
        # make() returns (n, 9); kernel's out is (N, R) with rows (N, 8):
        # R binds 8 vs 9 only via two literals — so use literal rows too.
        names = linter.rule_names(
            KERNEL + "\n"
            "def make():\n"
            "    return np.zeros((4, 9))\n\n"
            "def bad():\n"
            "    kernel(np.zeros((4, 8)), out=make())\n",
            rel="repro/dsp/mod.py",
        )
        assert "shape-mismatch" in names


class TestDtypeDropRule:
    def test_complex_into_float_contract_fires(self, linter):
        names = linter.rule_names(
            KERNEL + "\ndef bad():\n"
            "    kernel(np.zeros((4, 8), dtype=np.complex128))\n",
            rel="repro/dsp/mod.py",
        )
        assert "dtype-drop" in names

    def test_astype_float_on_complex_fires(self, linter):
        names = linter.rule_names(
            "import numpy as np\n\n"
            "def narrow(n):\n"
            "    x = np.zeros((n,), dtype=np.complex128)\n"
            "    return x.astype(np.float64)\n",
            rel="repro/dsp/mod.py",
        )
        assert "dtype-drop" in names

    def test_explicit_projection_stays_silent(self, linter):
        names = linter.rule_names(
            KERNEL + "\ndef good(n):\n"
            "    x = np.zeros((n, 8), dtype=np.complex128)\n"
            "    kernel(np.abs(x))\n"
            "    kernel(x.real)\n",
            rel="repro/dsp/mod.py",
        )
        assert "dtype-drop" not in names

    def test_float32_widening_fires_only_on_hotpath(self, linter):
        hot = KERNEL.replace(
            "# reprolint: shape", "# reprolint: hotpath shape"
        ).replace("dtype=float64", "dtype=float64")
        names = linter.rule_names(
            hot + "\ndef bad():\n"
            "    kernel(np.zeros((4, 8), dtype=np.float32))\n",
            rel="repro/dsp/mod.py",
        )
        assert "dtype-drop" in names
        cold = linter.rule_names(
            KERNEL + "\ndef fine():\n"
            "    kernel(np.zeros((4, 8), dtype=np.float32))\n",
            rel="repro/dsp/mod.py",
        )
        assert "dtype-drop" not in cold


class TestHotpathCopyRule:
    HOT = (
        "import numpy as np\n\n\n"
        "def kernel(rows, mask):  # reprolint: hotpath\n"
    )

    def test_astype_flatten_mask_and_repack_fire(self, linter):
        names = linter.rule_names(
            self.HOT
            + "    a = rows.astype(np.float64)\n"
            "    b = rows.flatten()\n"
            "    c = rows[rows > 0]\n"
            "    d = np.ascontiguousarray(rows)\n"
            "    return a, b, c, d\n",
            rel="repro/dsp/mod.py",
        )
        assert names.count("hotpath-copy") == 4

    def test_views_and_copy_false_stay_silent(self, linter):
        names = linter.rule_names(
            self.HOT
            + "    a = rows.astype(np.float64, copy=False)\n"
            "    b = rows.ravel()\n"
            "    c = rows[2:5]\n"
            "    return a, b, c\n",
            rel="repro/dsp/mod.py",
        )
        assert "hotpath-copy" not in names

    def test_unmarked_function_is_out_of_scope(self, linter):
        names = linter.rule_names(
            "import numpy as np\n\ndef cold(rows):\n"
            "    return rows.astype(np.float64)\n",
            rel="repro/dsp/mod.py",
        )
        assert "hotpath-copy" not in names

    def test_acknowledged_copy_is_suppressed(self, linter):
        names = linter.rule_names(
            self.HOT
            + "    return rows.astype(np.float64)  # reprolint: disable=hotpath-copy\n",
            rel="repro/dsp/mod.py",
        )
        assert "hotpath-copy" not in names


class TestOutAliasingRule:
    BODY = (
        "import numpy as np\n\n\n"
        "def kernel(rows, out=None):\n"
        "    return rows\n\n\n"
        "def safe_kernel(rows, out=None):  # reprolint: alias-safe\n"
        "    return rows\n\n\n"
    )

    def test_same_name_aliasing_fires(self, linter):
        names = linter.rule_names(
            self.BODY + "def bad(x):\n    kernel(x, out=x)\n",
            rel="repro/dsp/mod.py",
        )
        assert "out-aliasing" in names

    def test_identical_subscript_fires(self, linter):
        names = linter.rule_names(
            self.BODY + "def bad(x):\n    kernel(x[0:4], out=x[0:4])\n",
            rel="repro/dsp/mod.py",
        )
        assert "out-aliasing" in names

    def test_alias_safe_callee_stays_silent(self, linter):
        names = linter.rule_names(
            self.BODY + "def fine(x):\n    safe_kernel(x, out=x)\n",
            rel="repro/dsp/mod.py",
        )
        assert "out-aliasing" not in names

    def test_disjoint_windows_and_externals_stay_silent(self, linter):
        names = linter.rule_names(
            self.BODY
            + "def fine(x, y):\n"
            "    kernel(x[0:4], out=x[4:8])\n"
            "    kernel(x, out=y)\n"
            "    np.add(x, 1.0, out=x)\n",
            rel="repro/dsp/mod.py",
        )
        assert "out-aliasing" not in names


class TestViewEscapeRule:
    HEAD = "import numpy as np\nfrom repro.store.reader import TraceReader\n\n\n"

    def test_return_from_with_block_fires(self, linter):
        names = linter.rule_names(
            self.HEAD + "def bad(path):\n"
            "    with TraceReader(path) as r:\n"
            "        return r.read(0, 10)\n",
            rel="repro/store/mod.py",
        )
        assert "view-escape" in names

    def test_named_view_past_close_fires(self, linter):
        names = linter.rule_names(
            self.HEAD + "def bad(path):\n"
            "    r = TraceReader(path)\n"
            "    v = r.timestamps()\n"
            "    r.close()\n"
            "    return v\n",
            rel="repro/store/mod.py",
        )
        assert "view-escape" in names

    def test_attribute_store_fires(self, linter):
        names = linter.rule_names(
            self.HEAD + "class Holder:\n"
            "    def load(self, path):\n"
            "        with TraceReader(path) as r:\n"
            "            self.frames = r.frames\n",
            rel="repro/store/mod.py",
        )
        assert "view-escape" in names

    def test_copies_launder(self, linter):
        names = linter.rule_names(
            self.HEAD + "def fine(path):\n"
            "    with TraceReader(path) as r:\n"
            "        v = r.read(0, 10)\n"
            "        v = v.copy()\n"
            "        return v\n\n"
            "def fine2(path):\n"
            "    with TraceReader(path) as r:\n"
            "        return np.array(r.frames)\n",
            rel="repro/store/mod.py",
        )
        assert "view-escape" not in names

    def test_escaping_reader_transfers_the_obligation(self, linter):
        names = linter.rule_names(
            self.HEAD + "def fine(path):\n"
            "    r = TraceReader(path)\n"
            "    v = r.read(0, 10)\n"
            "    return r, v\n",
            rel="repro/store/mod.py",
        )
        assert "view-escape" not in names

"""Shared fixtures for the reprolint test battery.

Every rule test works the same way: write a snippet into a temporary
tree that mimics the real package layout (``<tmp>/repro/<pkg>/mod.py``
— the engine scopes rules by position relative to the ``repro``
component), lint it, and assert on the finding list.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import Diagnostic, LintResult, lint_paths


class SnippetLinter:
    """Write-and-lint helper bound to one tmp directory."""

    def __init__(self, root: Path) -> None:
        self.root = root

    def write(self, source: str, rel: str = "repro/sim/snippet.py") -> Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    def lint(
        self,
        source: str,
        rel: str = "repro/sim/snippet.py",
        rules=None,
        baseline=None,
    ) -> LintResult:
        path = self.write(source, rel)
        return lint_paths([path], rules=rules, baseline=baseline, jobs=1, root=self.root)

    def findings(self, source: str, rel: str = "repro/sim/snippet.py", rules=None) -> list[Diagnostic]:
        return self.lint(source, rel, rules=rules).diagnostics

    def rule_names(self, source: str, rel: str = "repro/sim/snippet.py", rules=None) -> list[str]:
        return [d.rule for d in self.findings(source, rel, rules=rules)]


@pytest.fixture
def linter(tmp_path: Path) -> SnippetLinter:
    return SnippetLinter(tmp_path)


@pytest.fixture(scope="session")
def repo_root() -> Path:
    root = Path(__file__).resolve().parents[2]
    assert (root / "src" / "repro").is_dir()
    return root

"""Whole-tree self-check: the call graph must fully classify our own source.

Every call in ``src/repro`` must land in a known category; an
``unresolved`` node means the resolver met an internal class or module
it claims to know but could not finish the lookup — a resolver bug, not
a property of the code under analysis.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.engine import build_project, discover_files

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_whole_src_call_graph_has_zero_unresolved_nodes():
    project = build_project(
        discover_files([REPO_SRC]), REPO_SRC.parent.parent, None
    )
    stats = project.project.stats()
    assert stats.get("unresolved", 0) == 0, project.project.unresolved_calls()


def test_whole_src_call_graph_is_substantially_internal():
    project = build_project(
        discover_files([REPO_SRC]), REPO_SRC.parent.parent, None
    )
    stats = project.project.stats()
    # Guard against a silent regression where extraction stops seeing
    # package-internal definitions and everything degrades to dynamic.
    assert stats.get("internal", 0) > 500
    assert stats.get("internal-ctor", 0) > 50


def test_whole_src_has_zero_unresolved_array_facts():
    """Every shape pragma / docstring Shape: block in our tree parses.

    A malformed or conflicting contract does not fail the lint run (the
    facts layer just records it), so this is the gate that keeps the
    annotation surface itself honest.
    """
    project = build_project(
        discover_files([REPO_SRC]), REPO_SRC.parent.parent, None
    )
    broken = {
        f"{mod.dotted}.{qual}": fn.array_unresolved
        for mod in project.project.modules.values()
        for qual, fn in mod.functions.items()
        if fn.array_unresolved
    }
    assert broken == {}


def test_whole_src_hotpath_functions_all_carry_contracts():
    """The CI census gate, asserted natively: every hotpath-marked
    function declares or inherits an array contract (params or return)."""
    project = build_project(
        discover_files([REPO_SRC]), REPO_SRC.parent.parent, None
    )
    hot = [s for s in project.summaries.values() if s.hotpath]
    assert hot, "the hotpath pragma vanished from the tree"
    uncovered = [
        s.qualname
        for s in hot
        if not s.array_params and s.returns_array is None
    ]
    assert uncovered == []

"""Whole-tree self-check: the call graph must fully classify our own source.

Every call in ``src/repro`` must land in a known category; an
``unresolved`` node means the resolver met an internal class or module
it claims to know but could not finish the lookup — a resolver bug, not
a property of the code under analysis.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.engine import build_project, discover_files

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_whole_src_call_graph_has_zero_unresolved_nodes():
    project = build_project(
        discover_files([REPO_SRC]), REPO_SRC.parent.parent, None
    )
    stats = project.project.stats()
    assert stats.get("unresolved", 0) == 0, project.project.unresolved_calls()


def test_whole_src_call_graph_is_substantially_internal():
    project = build_project(
        discover_files([REPO_SRC]), REPO_SRC.parent.parent, None
    )
    stats = project.project.stats()
    # Guard against a silent regression where extraction stops seeing
    # package-internal definitions and everything degrades to dynamic.
    assert stats.get("internal", 0) > 500
    assert stats.get("internal-ctor", 0) > 50

"""Lock-discipline (guarded-by) rule tests."""

from __future__ import annotations

_REL = "repro/fleet/shared.py"


class TestGuardedBy:
    def test_unguarded_read_flagged(self, linter):
        findings = linter.findings(
            """
            import threading

            class Shared:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def peek(self):
                    return self._count
            """,
            rel=_REL,
        )
        assert [d.rule for d in findings] == ["guarded-by"]
        assert "self._count" in findings[0].message
        assert "peek()" in findings[0].message

    def test_unguarded_write_flagged(self, linter):
        findings = linter.findings(
            """
            import threading

            class Shared:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    self._count = 0
            """,
            rel=_REL,
        )
        assert [d.rule for d in findings] == ["guarded-by"]
        assert "written in reset()" in findings[0].message

    def test_fully_guarded_class_clean(self, linter):
        assert (
            linter.rule_names(
                """
                import threading

                class Shared:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def peek(self):
                        with self._lock:
                            return self._count
                """,
                rel=_REL,
            )
            == []
        )

    def test_init_writes_exempt(self, linter):
        # Construction happens before the object is shared.
        assert (
            linter.rule_names(
                """
                import threading

                class Shared:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0
                        self._count = self._count + 1

                    def bump(self):
                        with self._lock:
                            self._count += 1
                """,
                rel=_REL,
            )
            == []
        )

    def test_condition_counts_as_lock(self, linter):
        findings = linter.findings(
            """
            import threading

            class Pump:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._running = False

                def start(self):
                    self._running = True

                def stop(self):
                    with self._cond:
                        self._running = False
            """,
            rel=_REL,
        )
        assert [d.rule for d in findings] == ["guarded-by"]
        assert "self._cond" in findings[0].message

    def test_unrelated_unlocked_attr_not_flagged(self, linter):
        # _label is never written under the lock: plain unshared state.
        assert (
            linter.rule_names(
                """
                import threading

                class Shared:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._label = "x"

                    def rename(self, label):
                        self._label = label

                    def read(self):
                        return self._label
                """,
                rel=_REL,
            )
            == []
        )

    def test_class_without_locks_ignored(self, linter):
        assert (
            linter.rule_names(
                """
                class Plain:
                    def __init__(self):
                        self._x = 0

                    def bump(self):
                        self._x += 1
                """,
                rel=_REL,
            )
            == []
        )


class TestGuardedByAnnotations:
    def test_declaration_in_init_flags_all_unlocked_accesses(self, linter):
        # No method ever writes under the lock, but the declaration
        # states the intent — so the unlocked read is still a finding.
        findings = linter.findings(
            """
            import threading

            class Shared:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._state = "init"  # reprolint: guarded-by(_lock)

                def peek(self):
                    return self._state
            """,
            rel=_REL,
        )
        assert [d.rule for d in findings] == ["guarded-by"]
        assert "read in peek()" in findings[0].message

    def test_method_level_pragma_means_caller_holds_lock(self, linter):
        assert (
            linter.rule_names(
                """
                import threading

                class Shared:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._bump_locked()

                    def _bump_locked(self):  # reprolint: guarded-by(_lock)
                        self._count += 1
                """,
                rel=_REL,
            )
            == []
        )

    def test_unguarded_ok_on_access_line(self, linter):
        assert (
            linter.rule_names(
                """
                import threading

                class Shared:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def peek_racy(self):
                        return self._count  # reprolint: unguarded-ok
                """,
                rel=_REL,
            )
            == []
        )

    def test_unguarded_ok_declaration_exempts_attribute(self, linter):
        assert (
            linter.rule_names(
                """
                import threading

                class Shared:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._hint = 0  # reprolint: unguarded-ok

                    def bump(self):
                        with self._lock:
                            self._hint += 1

                    def peek(self):
                        return self._hint

                    def reset(self):
                        self._hint = 0
                """,
                rel=_REL,
            )
            == []
        )

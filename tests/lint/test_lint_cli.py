"""CLI-level lint tests, including the tier-1 clean-tree gate.

The two ``*_seeded_violation`` tests are the acceptance spec for the CI
gate: take the *real* source files, deliberately insert the class of
bug each rule exists for, and prove the lint run fails.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import all_rules, lint_paths


def _run_lint_cli(args: list[str], cwd: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(cwd / "src")},
    )


class TestCleanTree:
    def test_src_is_clean_against_committed_baseline(self, repo_root):
        # Tier-1 gate: the whole tree lints clean. This is exactly the
        # command CI runs.
        proc = _run_lint_cli(["src"], cwd=repo_root)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_committed_baseline_is_empty(self, repo_root):
        # The gate holds with zero acknowledged findings: every rule is
        # fully enforced, nothing is grandfathered.
        payload = json.loads((repo_root / ".reprolint.json").read_text())
        assert payload["entries"] == {}


class TestSeededViolations:
    def test_wall_clock_in_sim_fails_the_gate(self, repo_root, tmp_path, capsys):
        # Insert a time.time() call into the real simulator module.
        source = (repo_root / "src/repro/sim/simulator.py").read_text()
        assert "time.time()" not in source
        seeded = "import time\n" + source + "\n\n_T0 = time.time()\n"
        target = tmp_path / "src/repro/sim/simulator.py"
        target.parent.mkdir(parents=True)
        target.write_text(seeded)

        exit_code = repro_main(["lint", str(tmp_path / "src")])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "wall-clock" in out

    def test_unguarded_write_in_session_fails_the_gate(self, repo_root, tmp_path, capsys):
        # Insert an unguarded write to lock-guarded session state.
        source = (repo_root / "src/repro/fleet/session.py").read_text()
        anchor = "        self._restart_requested = True\n"
        assert source.count(anchor) == 1
        seeded = source.replace(anchor, anchor + "        self._generation = 0\n")
        target = tmp_path / "src/repro/fleet/session.py"
        target.parent.mkdir(parents=True)
        target.write_text(seeded)

        exit_code = repro_main(["lint", str(tmp_path / "src")])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "guarded-by" in out
        assert "_generation" in out

    def test_unseeded_tree_passes(self, repo_root, tmp_path, capsys):
        # Control: the same files unmodified are clean.
        for rel in ("src/repro/sim/simulator.py", "src/repro/fleet/session.py"):
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text((repo_root / rel).read_text())
        exit_code = repro_main(["lint", str(tmp_path / "src")])
        capsys.readouterr()
        assert exit_code == 0


class TestCliSurface:
    def test_list_rules_covers_all_families(self, repo_root, capsys):
        exit_code = repro_main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert exit_code == 0
        for name in (
            "wall-clock",
            "global-rng",
            "unit-suffix",
            "unit-mismatch",
            "guarded-by",
            "mutable-default",
            "except-hygiene",
            "no-assert",
            "or-default",
        ):
            assert name in out

    def test_registry_names_are_unique_and_documented(self):
        rules = all_rules()
        names = [r.name for r in rules]
        assert len(names) == len(set(names))
        assert all(r.summary for r in rules)

    def test_json_format(self, repo_root, tmp_path, capsys):
        target = tmp_path / "repro/sim/bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\n\n\ndef f():\n    return time.time()\n")
        exit_code = repro_main(["lint", str(target), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["summary"]["findings"] == 1
        assert payload["findings"][0]["rule"] == "wall-clock"

    def test_unknown_rule_rejected(self, capsys):
        with pytest.raises(SystemExit, match="unknown rule"):
            repro_main(["lint", "--rules", "nope"])

    def test_rule_subset_runs_only_selected(self, tmp_path, capsys):
        target = tmp_path / "repro/sim/bad.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import time\n\n\ndef f():\n    assert True\n    return time.time()\n"
        )
        exit_code = repro_main(["lint", str(target), "--rules", "no-assert"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "no-assert" in out and "wall-clock" not in out

    def test_update_baseline_flow(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "repro/sim/bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\n\n\ndef f():\n    return time.time()\n")

        assert repro_main(["lint", "repro"]) == 1
        capsys.readouterr()
        assert repro_main(["lint", "repro", "--update-baseline"]) == 0
        capsys.readouterr()
        assert repro_main(["lint", "repro"]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out
        # And --no-baseline reveals the finding again.
        assert repro_main(["lint", "repro", "--no-baseline"]) == 1

    def test_parse_error_is_a_finding_with_exit_code_2(self, tmp_path, capsys):
        # An unparseable file is a *tooling* outcome, not a policy one:
        # the run never analysed the file, so it must not masquerade as
        # an ordinary finding (exit 1).
        target = tmp_path / "repro/sim/broken.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f(:\n")
        exit_code = repro_main(["lint", str(target)])
        out = capsys.readouterr().out
        assert exit_code == 2
        assert "parse-error" in out


class TestStats:
    def test_stats_reports_pragmas_and_resolution(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "repro/sim/mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import time\n"
            "def slow():  # reprolint: disable=wall-clock\n"
            "    return time.time()\n"
            "def top():\n"
            "    return slow()\n"
        )
        exit_code = repro_main(["lint", "repro", "--stats"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "pragma inventory (1 files scanned)" in out
        assert "disable=wall-clock  1" in out
        assert "call resolution" in out
        assert "internal" in out and "external" in out

    def test_stats_ignores_the_result_cache(self, tmp_path, capsys, monkeypatch):
        # The inventory is a fresh tokenize scan: a warm cache from a
        # pre-pragma run must not hide a pragma added afterwards.
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "repro/sim/mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f():\n    pass\n")
        assert repro_main(["lint", "repro", "--cache"]) == 0
        capsys.readouterr()
        target.write_text("def f():  # reprolint: disable=wall-clock\n    pass\n")
        assert repro_main(["lint", "repro", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "disable=wall-clock  1" in out

    def test_stats_rejects_missing_paths(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit, match="no such path"):
            repro_main(["lint", "nowhere", "--stats"])


class TestEngineParallelism:
    def test_parallel_and_serial_agree_on_the_real_tree(self, repo_root):
        src = repo_root / "src"
        serial = lint_paths([src], jobs=1, root=repo_root)
        parallel = lint_paths([src], jobs=8, root=repo_root)
        assert serial.diagnostics == parallel.diagnostics
        assert serial.files == parallel.files == len(list(src.rglob("*.py")))

"""Result cache, ``--changed`` narrowing, and exit-code contract tests."""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

from repro.lint.cache import ResultCache, rule_fingerprint
from repro.lint.cli import changed_files, main as lint_main
from repro.lint.engine import lint_paths
from repro.lint.rules import all_rules

VIOLATION = "import time\n\n\ndef f():\n    return time.time()\n"
CLEAN = "def f(x):\n    return x + 1\n"


def _write_tree(root: Path) -> Path:
    target = root / "repro" / "sim" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(VIOLATION)
    return target


class TestResultCache:
    def test_cold_run_populates_warm_run_hits(self, tmp_path):
        target = _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"

        cold = ResultCache(cache_dir)
        first = lint_paths([target], jobs=1, root=tmp_path, cache=cold)
        assert (cold.hits, cold.misses) == (0, 1)

        warm = ResultCache(cache_dir)  # fresh instance: entries persisted
        second = lint_paths([target], jobs=1, root=tmp_path, cache=warm)
        assert (warm.hits, warm.misses) == (1, 0)
        assert second.diagnostics == first.diagnostics
        assert second.suppressed == first.suppressed

    def test_editing_the_file_invalidates(self, tmp_path):
        target = _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        lint_paths([target], jobs=1, root=tmp_path, cache=ResultCache(cache_dir))

        target.write_text(CLEAN)
        after = ResultCache(cache_dir)
        result = lint_paths([target], jobs=1, root=tmp_path, cache=after)
        assert (after.hits, after.misses) == (0, 1)
        assert result.diagnostics == []

    def test_rule_set_is_part_of_the_key(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        rules = all_rules()
        full = cache.key("repro/sim/mod.py", b"x = 1\n", rule_fingerprint(rules))
        subset = cache.key(
            "repro/sim/mod.py", b"x = 1\n", rule_fingerprint(rules[:1])
        )
        renamed = cache.key("repro/sim/other.py", b"x = 1\n", rule_fingerprint(rules))
        assert len({full, subset, renamed}) == 3

    def test_rule_version_bump_invalidates_warm_entries(self, tmp_path):
        """The staleness regression: a re-tuned rule must never serve its
        old findings from cache just because the file did not change."""
        target = _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        rules = all_rules()
        lint_paths([target], rules=rules, jobs=1, root=tmp_path,
                   cache=ResultCache(cache_dir))

        bumped = tuple(rules)
        flipped = bumped[0]
        original_version = flipped.version
        try:
            type(flipped).version = f"{original_version}-test-bump"
            after = ResultCache(cache_dir)
            lint_paths([target], rules=bumped, jobs=1, root=tmp_path, cache=after)
            assert (after.hits, after.misses) == (0, 1)
        finally:
            type(flipped).version = original_version

        # Same versions again: the re-written entry is warm.
        warm = ResultCache(cache_dir)
        lint_paths([target], rules=rules, jobs=1, root=tmp_path, cache=warm)
        assert (warm.hits, warm.misses) == (1, 0)

    def test_summaries_version_bump_invalidates_warm_entries(
        self, tmp_path, monkeypatch
    ):
        """An analysis-domain change (a new summary field, a different
        propagation) must flush warm entries even when no rule version
        moved: the summaries version is folded into both the persisted
        store gate and the per-file result fingerprint."""
        import repro.lint.summaries as summaries_mod

        target = _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        lint_paths([target], jobs=1, root=tmp_path, cache=ResultCache(cache_dir))

        monkeypatch.setattr(summaries_mod, "SUMMARIES_VERSION", "test-bump")
        monkeypatch.setattr(
            summaries_mod,
            "_STORE_VERSION",
            f"{summaries_mod.CALLGRAPH_VERSION}|test-bump",
        )
        after = ResultCache(cache_dir)
        lint_paths([target], jobs=1, root=tmp_path, cache=after)
        assert (after.hits, after.misses) == (0, 1)

        monkeypatch.undo()
        warm = ResultCache(cache_dir)
        lint_paths([target], jobs=1, root=tmp_path, cache=warm)
        assert (warm.hits, warm.misses) == (1, 0)

    def test_corrupt_entries_degrade_to_misses(self, tmp_path):
        target = _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        first = lint_paths([target], jobs=1, root=tmp_path, cache=ResultCache(cache_dir))
        for entry in cache_dir.rglob("*.json"):
            entry.write_text("{not json")

        recover = ResultCache(cache_dir)
        result = lint_paths([target], jobs=1, root=tmp_path, cache=recover)
        assert (recover.hits, recover.misses) == (0, 1)
        assert result.diagnostics == first.diagnostics

    def test_unwritable_cache_dir_is_non_fatal(self, tmp_path):
        cache = ResultCache(tmp_path / "blocked")
        (tmp_path / "blocked").write_text("a file, not a directory")
        target = _write_tree(tmp_path)
        result = lint_paths([target], jobs=1, root=tmp_path, cache=cache)
        assert [d.rule for d in result.diagnostics] == ["wall-clock"]


def _git(repo: Path, *argv: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
        cwd=repo,
        check=True,
        capture_output=True,
    )


@pytest.fixture
def git_repo(tmp_path):
    repo = tmp_path / "proj"
    (repo / "repro" / "sim").mkdir(parents=True)
    (repo / "repro" / "sim" / "stale.py").write_text(CLEAN)
    (repo / "repro" / "sim" / "edited.py").write_text(CLEAN)
    _git(repo, "init", "-q")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-q", "-m", "seed")
    (repo / "repro" / "sim" / "edited.py").write_text(VIOLATION)
    (repo / "repro" / "sim" / "untracked.py").write_text(VIOLATION)
    return repo


class TestChangedMode:
    def test_changed_files_sees_edits_and_untracked(self, git_repo):
        changed = {p.name for p in changed_files("HEAD", root=git_repo)}
        assert changed == {"edited.py", "untracked.py"}

    def test_outside_a_repository_is_a_usage_error(self, tmp_path):
        lonely = tmp_path / "lonely"
        lonely.mkdir()
        with pytest.raises(SystemExit):
            changed_files("HEAD", root=lonely)

    def test_cli_lints_only_the_diff(self, git_repo, monkeypatch, capsys):
        monkeypatch.chdir(git_repo)
        exit_code = lint_main(["repro", "--changed", "HEAD", "--no-baseline"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "edited.py" in out and "untracked.py" in out
        assert "stale.py" not in out  # committed and untouched: skipped

    def test_cli_unknown_ref_exits_with_usage_error(self, git_repo, monkeypatch):
        monkeypatch.chdir(git_repo)
        with pytest.raises(SystemExit):
            lint_main(["repro", "--changed", "no-such-ref", "--no-baseline"])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "repro" / "sim" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(CLEAN)
        assert lint_main([str(target), "--no-baseline"]) == 0
        capsys.readouterr()

    def test_findings_exit_one(self, tmp_path, capsys):
        target = _write_tree(tmp_path)
        assert lint_main([str(target), "--no-baseline"]) == 1
        capsys.readouterr()

    def test_internal_error_exits_two(self, tmp_path, monkeypatch, capsys):
        target = _write_tree(tmp_path)

        def explode(*args, **kwargs):
            raise RuntimeError("synthetic analysis fault")

        monkeypatch.setattr("repro.lint.cli.lint_paths", explode)
        exit_code = lint_main([str(target), "--no-baseline"])
        out = capsys.readouterr().out
        assert exit_code == 2
        assert "internal error" in out and "synthetic analysis fault" in out

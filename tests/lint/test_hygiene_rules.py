"""API-hygiene rules: mutable defaults, excepts, asserts, or-defaults."""

from __future__ import annotations

import pytest

_REL = "repro/eval/util.py"


class TestMutableDefault:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "dict()", "list()"])
    def test_mutable_defaults_flagged(self, linter, default):
        names = linter.rule_names(
            f"""
            def f(items={default}):
                return items
            """,
            rel=_REL,
        )
        assert names == ["mutable-default"]

    @pytest.mark.parametrize("default", ["()", "None", "frozenset()", "0", "'x'"])
    def test_immutable_defaults_ok(self, linter, default):
        assert (
            linter.rule_names(
                f"""
                def f(item={default}):
                    return item
                """,
                rel=_REL,
            )
            == []
        )

    def test_kwonly_mutable_default_flagged(self, linter):
        names = linter.rule_names(
            """
            def f(*, items=[]):
                return items
            """,
            rel=_REL,
        )
        assert names == ["mutable-default"]


class TestExceptHygiene:
    def test_bare_except_flagged(self, linter):
        names = linter.rule_names(
            """
            def f():
                try:
                    return 1
                except:
                    return 0
            """,
            rel=_REL,
        )
        assert names == ["except-hygiene"]

    def test_broad_except_without_reraise_flagged(self, linter):
        names = linter.rule_names(
            """
            def f():
                try:
                    return 1
                except Exception:
                    return 0
            """,
            rel=_REL,
        )
        assert names == ["except-hygiene"]

    def test_broad_except_with_reraise_ok(self, linter):
        assert (
            linter.rule_names(
                """
                import logging

                def f():
                    try:
                        return 1
                    except Exception:
                        logging.exception("boom")
                        raise
                """,
                rel=_REL,
            )
            == []
        )

    def test_narrow_except_ok(self, linter):
        assert (
            linter.rule_names(
                """
                def f():
                    try:
                        return 1
                    except (ValueError, KeyError):
                        return 0
                """,
                rel=_REL,
            )
            == []
        )


class TestNoAssert:
    def test_assert_in_package_flagged(self, linter):
        names = linter.rule_names(
            """
            def f(x):
                assert x > 0
                return x
            """,
            rel=_REL,
        )
        assert names == ["no-assert"]

    def test_assert_outside_package_ignored(self, linter):
        # Test files (no repro/ component) may assert freely.
        assert (
            linter.rule_names(
                """
                def f(x):
                    assert x > 0
                    return x
                """,
                rel="tests/test_thing.py",
            )
            == []
        )


class TestOrDefault:
    def test_optional_param_or_default_flagged(self, linter):
        findings = linter.findings(
            """
            def f(config=None):
                config = config or dict
                return config
            """,
            rel=_REL,
        )
        assert [d.rule for d in findings] == ["or-default"]
        assert "is not None" in findings[0].message

    def test_union_none_annotation_flagged(self, linter):
        names = linter.rule_names(
            """
            def f(rng: object | None = None):
                rng = rng or object()
                return rng
            """,
            rel=_REL,
        )
        assert names == ["or-default"]

    def test_or_inside_call_argument_flagged(self, linter):
        names = linter.rule_names(
            """
            def g(x):
                return x

            def f(config: dict | None = None):
                return g(config or {"a": 1})
            """,
            rel=_REL,
        )
        assert names == ["or-default"]

    def test_is_none_rewrite_ok(self, linter):
        assert (
            linter.rule_names(
                """
                def f(config=None):
                    config = config if config is not None else dict
                    return config
                """,
                rel=_REL,
            )
            == []
        )

    def test_bool_param_exempt(self, linter):
        assert (
            linter.rule_names(
                """
                def f(flag: bool = False, fallback: bool = True):
                    return flag or fallback
                """,
                rel=_REL,
            )
            == []
        )

    def test_non_parameter_or_ok(self, linter):
        assert (
            linter.rule_names(
                """
                def f():
                    a = compute() or 1
                    return a

                def compute():
                    return 0
                """,
                rel=_REL,
            )
            == []
        )

"""Determinism rules: wall-clock and global-RNG bans in the pure packages."""

from __future__ import annotations

import pytest


class TestWallClock:
    def test_time_time_in_sim_is_flagged(self, linter):
        names = linter.rule_names(
            """
            import time

            def stamp():
                return time.time()
            """,
            rel="repro/sim/clock.py",
        )
        assert names == ["wall-clock"]

    @pytest.mark.parametrize(
        "call",
        ["time.perf_counter()", "time.sleep(0.1)", "time.monotonic()", "time.time_ns()"],
    )
    def test_other_clock_calls_flagged(self, linter, call):
        names = linter.rule_names(
            f"""
            import time

            def f():
                return {call}
            """,
            rel="repro/dsp/clock.py",
        )
        assert names == ["wall-clock"]

    def test_datetime_now_flagged(self, linter):
        names = linter.rule_names(
            """
            import datetime

            def f():
                return datetime.datetime.now()
            """,
            rel="repro/rf/clock.py",
        )
        assert names == ["wall-clock"]

    def test_from_import_of_clock_flagged(self, linter):
        names = linter.rule_names(
            """
            from time import perf_counter
            """,
            rel="repro/physio/clock.py",
        )
        assert names == ["wall-clock"]

    def test_fleet_is_allowlisted(self, linter):
        names = linter.rule_names(
            """
            import time

            def f():
                time.sleep(0.1)
                return time.perf_counter()
            """,
            rel="repro/fleet/pacing.py",
        )
        assert names == []

    def test_core_realtime_is_allowlisted(self, linter):
        names = linter.rule_names(
            """
            import time

            def f():
                return time.perf_counter()
            """,
            rel="repro/core/realtime.py",
        )
        assert names == []

    def test_outside_repro_tree_not_in_scope(self, linter):
        names = linter.rule_names(
            """
            import time

            def f():
                return time.time()
            """,
            rel="scripts/clock.py",
        )
        assert names == []

    def test_frame_index_time_is_fine(self, linter):
        names = linter.rule_names(
            """
            def time_of(frame_index, frame_rate_hz):
                return frame_index / frame_rate_hz
            """,
            rel="repro/sim/clock.py",
        )
        assert names == []


class TestGlobalRng:
    @pytest.mark.parametrize(
        "expr",
        ["np.random.seed(0)", "np.random.normal()", "np.random.rand(4)", "np.random.randint(3)"],
    )
    def test_global_numpy_rng_flagged(self, linter, expr):
        names = linter.rule_names(
            f"""
            import numpy as np

            def f():
                return {expr}
            """,
            rel="repro/sim/noise.py",
        )
        assert "global-rng" in names

    def test_seeded_default_rng_ok(self, linter):
        names = linter.rule_names(
            """
            import numpy as np

            def f(seed: int):
                rng = np.random.default_rng(seed)
                return rng.normal(size=8)
            """,
            rel="repro/sim/noise.py",
        )
        assert names == []

    def test_unseeded_default_rng_flagged(self, linter):
        names = linter.rule_names(
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
            rel="repro/sim/noise.py",
        )
        assert names == ["global-rng"]

    def test_stdlib_random_module_flagged(self, linter):
        names = linter.rule_names(
            """
            import random

            def f():
                return random.random()
            """,
            rel="repro/datasets/noise.py",
        )
        assert "global-rng" in names

    def test_stdlib_from_import_flagged(self, linter):
        names = linter.rule_names(
            """
            from random import gauss
            """,
            rel="repro/baselines/noise.py",
        )
        assert names == ["global-rng"]

    def test_seedable_stdlib_random_instance_ok(self, linter):
        names = linter.rule_names(
            """
            from random import Random

            def f(seed: int):
                return Random(seed).random()
            """,
            rel="repro/baselines/noise.py",
        )
        assert names == []

    def test_generator_methods_ok(self, linter):
        names = linter.rule_names(
            """
            def f(rng):
                return rng.normal(0.0, 1.0, size=16)
            """,
            rel="repro/vehicle/noise.py",
        )
        assert names == []

    def test_fleet_allowlisted_for_rng_too(self, linter):
        names = linter.rule_names(
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
            rel="repro/fleet/jitter.py",
        )
        assert names == []

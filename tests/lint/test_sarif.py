"""SARIF reporter tests: schema validity plus GitHub-upload essentials.

The schema used here is a vendored subset of the official SARIF 2.1.0
JSON schema: every ``required`` clause and type constraint on the path
reprolint actually emits (log → run → tool.driver → rules / results →
locations → physicalLocation → region). Vendoring the constraint subset
keeps the test hermetic (no network fetch of the 300 KB upstream schema)
while still failing on any structural regression GitHub code scanning
would reject.
"""

from __future__ import annotations

import json

import jsonschema

from repro.lint import all_rules
from repro.lint.diagnostics import Diagnostic
from repro.lint.reporters import LintResult, render_sarif

# Subset of sarif-schema-2.1.0.json: structure + requiredness of the
# fields reprolint emits. `additionalProperties` stays open, as in the
# real schema.
SARIF_SUBSET_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "$schema": {"type": "string", "format": "uri"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string", "minLength": 1},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {"type": "string"}
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {"type": "string"}
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _result_with(diagnostics: list[Diagnostic]) -> LintResult:
    return LintResult(diagnostics=diagnostics, files=3)


def _sample_diagnostics() -> list[Diagnostic]:
    return [
        Diagnostic("src/repro/sim/a.py", 10, 4, "wall-clock", "no clocks"),
        Diagnostic("src/repro/sim/b.py", 1, 0, "parse-error", "syntax error: bad"),
        Diagnostic("src/repro/fleet/c.py", 7, 2, "resource-leak", "join your threads"),
    ]


class TestSarifOutput:
    def test_validates_against_sarif_schema(self):
        log = json.loads(render_sarif(_result_with(_sample_diagnostics()), all_rules()))
        jsonschema.validate(log, SARIF_SUBSET_SCHEMA)

    def test_empty_result_also_validates(self):
        log = json.loads(render_sarif(_result_with([]), all_rules()))
        jsonschema.validate(log, SARIF_SUBSET_SCHEMA)
        assert log["runs"][0]["results"] == []

    def test_every_registered_rule_is_in_driver_metadata(self):
        log = json.loads(render_sarif(_result_with([]), all_rules()))
        ids = {rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]}
        expected = {rule.name for rule in all_rules()}
        assert ids == expected
        assert {"rng-reseed", "resource-leak", "dead-store"} <= ids

    def test_rule_index_points_at_the_right_rule(self):
        log = json.loads(render_sarif(_result_with(_sample_diagnostics()), all_rules()))
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            if "ruleIndex" in result:
                assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_regions_are_one_based(self):
        log = json.loads(render_sarif(_result_with(_sample_diagnostics()), all_rules()))
        regions = [
            loc["physicalLocation"]["region"]
            for result in log["runs"][0]["results"]
            for loc in result["locations"]
        ]
        assert all(r["startLine"] >= 1 and r["startColumn"] >= 1 for r in regions)

    def test_parse_error_maps_to_error_level(self):
        log = json.loads(render_sarif(_result_with(_sample_diagnostics()), all_rules()))
        levels = {r["ruleId"]: r["level"] for r in log["runs"][0]["results"]}
        assert levels["parse-error"] == "error"
        assert levels["wall-clock"] == "warning"

    def test_cli_writes_sarif_to_output_file(self, repo_root, tmp_path, capsys):
        from repro.cli import main as repro_main

        target = tmp_path / "repro/sim/bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\n\n\ndef f():\n    return time.time()\n")
        out_file = tmp_path / "report.sarif"
        exit_code = repro_main(
            ["lint", str(target), "--format", "sarif", "--output", str(out_file)]
        )
        summary = capsys.readouterr().out
        assert exit_code == 1
        assert "1 finding" in summary  # summary still reaches the console
        log = json.loads(out_file.read_text())
        jsonschema.validate(log, SARIF_SUBSET_SCHEMA)
        assert log["runs"][0]["results"][0]["ruleId"] == "wall-clock"

"""Gate tests for the resource-lifecycle rule family."""

from __future__ import annotations

FLEET = "repro/fleet/snippet.py"
HARDWARE = "repro/hardware/snippet.py"


class TestResourceLeak:
    def test_unjoined_thread_flagged(self, linter):
        names = linter.rule_names(
            """
            import threading


            def launch(work):
                t = threading.Thread(target=work)
                t.start()
            """,
            rel=FLEET,
        )
        assert "resource-leak" in names

    def test_early_return_path_flagged(self, linter):
        # The happy path joins; the early return does not. Union join
        # over paths must still convict.
        names = linter.rule_names(
            """
            import threading


            def launch(work, flag):
                t = threading.Thread(target=work)
                t.start()
                if flag:
                    return None
                t.join()
                return None
            """,
            rel=FLEET,
        )
        assert "resource-leak" in names

    def test_try_finally_join_is_clean(self, linter):
        names = linter.rule_names(
            """
            import threading


            def launch(work, body):
                t = threading.Thread(target=work)
                t.start()
                try:
                    body()
                finally:
                    t.join()
            """,
            rel=FLEET,
        )
        assert "resource-leak" not in names

    def test_session_close_on_every_path_is_clean(self, linter):
        names = linter.rule_names(
            """
            from repro.fleet.session import DetectorSession


            def probe(frames):
                session = DetectorSession("v1", frames)
                try:
                    return session.pump()
                finally:
                    session.close()
            """,
            rel=FLEET,
        )
        assert "resource-leak" not in names

    def test_unclosed_session_with_raise_flagged(self, linter):
        names = linter.rule_names(
            """
            from repro.fleet.session import DetectorSession


            def probe(frames, ok):
                session = DetectorSession("v1", frames)
                if not ok:
                    raise ValueError("bad frames")
                session.close()
                return None
            """,
            rel=FLEET,
        )
        assert "resource-leak" in names

    def test_with_governed_file_is_clean(self, linter):
        names = linter.rule_names(
            """
            def dump(path, payload):
                with open(path, "w") as handle:
                    handle.write(payload)
            """,
            rel=HARDWARE,
        )
        assert "resource-leak" not in names

    def test_unclosed_open_flagged(self, linter):
        names = linter.rule_names(
            """
            def dump(path, payload):
                handle = open(path, "w")
                handle.write(payload)
            """,
            rel=HARDWARE,
        )
        assert "resource-leak" in names

    def test_escape_transfers_the_obligation(self, linter):
        # Storing the session into a registry hands ownership over; the
        # registry's close path carries the obligation now.
        names = linter.rule_names(
            """
            from repro.fleet.session import DetectorSession


            def register(frames, registry):
                session = DetectorSession("v1", frames)
                registry["v1"] = session
            """,
            rel=FLEET,
        )
        assert "resource-leak" not in names

    def test_returned_resource_is_clean(self, linter):
        names = linter.rule_names(
            """
            import threading


            def spawn(work):
                t = threading.Thread(target=work)
                t.start()
                return t
            """,
            rel=FLEET,
        )
        assert "resource-leak" not in names

    def test_moves_pragma_documents_handoff(self, linter):
        names = linter.rule_names(
            """
            import threading


            def launch(work, pool):
                t = threading.Thread(target=work)
                pool.adopt(t.name)  # reprolint: moves(t)
            """,
            rel=FLEET,
        )
        assert "resource-leak" not in names

    def test_outside_service_packages_not_enforced(self, linter):
        names = linter.rule_names(
            """
            import threading


            def launch(work):
                t = threading.Thread(target=work)
                t.start()
            """,
            rel="repro/eval/snippet.py",
        )
        assert "resource-leak" not in names


class TestStoreHandleLeak:
    STORE = "repro/store/snippet.py"

    def test_unclosed_writer_flagged(self, linter):
        # A leaked TraceWriter loses its buffered tail chunk and never
        # writes the index: the recording looks crashed.
        names = linter.rule_names(
            """
            from repro.store.writer import TraceWriter


            def record(frames):
                writer = TraceWriter("out.rst", n_bins=234, frame_rate_hz=25.0)
                for frame in frames:
                    writer.append(frame)
            """,
            rel=self.STORE,
        )
        assert "resource-leak" in names

    def test_unclosed_reader_on_early_return_flagged(self, linter):
        names = linter.rule_names(
            """
            from repro.store.reader import TraceReader


            def peek(path, skip):
                reader = TraceReader(path)
                if skip:
                    return None
                frames = reader.read()
                reader.close()
                return frames
            """,
            rel=self.STORE,
        )
        assert "resource-leak" in names

    def test_unclosed_recorder_flagged(self, linter):
        names = linter.rule_names(
            """
            from repro.store.record import Recorder


            def capture(stream):
                recorder = Recorder("out.rst", n_bins=234, frame_rate_hz=25.0)
                recorder.drain(stream)
            """,
            rel=self.STORE,
        )
        assert "resource-leak" in names

    def test_with_governed_writer_is_clean(self, linter):
        names = linter.rule_names(
            """
            from repro.store.writer import TraceWriter


            def record(frames):
                with TraceWriter("out.rst", n_bins=234, frame_rate_hz=25.0) as writer:
                    for frame in frames:
                        writer.append(frame)
            """,
            rel=self.STORE,
        )
        assert "resource-leak" not in names

    def test_try_finally_close_is_clean(self, linter):
        names = linter.rule_names(
            """
            from repro.store.reader import TraceReader


            def load(path):
                reader = TraceReader(path)
                try:
                    return reader.read()
                finally:
                    reader.close()
            """,
            rel=self.STORE,
        )
        assert "resource-leak" not in names

    def test_outside_store_package_not_tracked(self, linter):
        # The rule's scope is hardware/fleet/store; a helper script in
        # eval handing the reader to its caller stays unflagged.
        names = linter.rule_names(
            """
            from repro.store.reader import TraceReader


            def open_for_caller(path):
                reader = TraceReader(path)
                return reader
            """,
            rel="repro/eval/snippet.py",
        )
        assert "resource-leak" not in names


class TestGatewayHandleLeak:
    GATEWAY = "repro/gateway/snippet.py"

    def test_unreleased_server_flagged(self, linter):
        # A leaked GatewayServer keeps its listener socket and the
        # serve-mode worker pool alive past the function.
        names = linter.rule_names(
            """
            from repro.gateway.server import GatewayServer


            def build(port):
                server = GatewayServer(port=port)
                server.health()
            """,
            rel=self.GATEWAY,
        )
        assert "resource-leak" in names

    def test_unreleased_http_server_on_early_return_flagged(self, linter):
        names = linter.rule_names(
            """
            from repro.gateway.http import MetricsHttpServer


            async def expose(registry, skip):
                http = MetricsHttpServer(registry)
                await http.start()
                if skip:
                    return None
                await http.stop()
                return None
            """,
            rel=self.GATEWAY,
        )
        assert "resource-leak" in names

    def test_shutdown_on_every_path_is_clean(self, linter):
        names = linter.rule_names(
            """
            from repro.gateway.server import GatewayServer


            async def serve(body):
                server = GatewayServer()
                await server.start()
                try:
                    return await body(server)
                finally:
                    await server.shutdown()
            """,
            rel=self.GATEWAY,
        )
        assert "resource-leak" not in names

    def test_http_stop_is_a_release(self, linter):
        names = linter.rule_names(
            """
            from repro.gateway.http import MetricsHttpServer


            async def scrape_once(registry):
                http = MetricsHttpServer(registry)
                await http.start()
                port = http.port
                await http.stop()
                return port
            """,
            rel=self.GATEWAY,
        )
        assert "resource-leak" not in names

    def test_leaked_ingest_session_flagged_as_session(self, linter):
        findings = linter.findings(
            """
            from repro.gateway.ingest import IngestSession


            def spawn(sid):
                session = IngestSession(sid, n_bins=234, frame_rate_hz=25.0)
                session.start()
            """,
            rel=self.GATEWAY,
        )
        leaks = [f for f in findings if f.rule == "resource-leak"]
        assert leaks and "session" in leaks[0].message

    def test_escape_via_attribute_discharges_obligation(self, linter):
        # Storing the handle on self hands ownership to the object;
        # release happens in its own lifecycle, not this function.
        names = linter.rule_names(
            """
            from repro.gateway.client import GatewayClient


            class Harness:
                def adopt(self, reader, writer):
                    client = GatewayClient(reader, writer)
                    self.client = client
            """,
            rel=self.GATEWAY,
        )
        assert "resource-leak" not in names


class TestShardHandleLeak:
    SHARD = "repro/shard/snippet.py"

    def test_unreleased_worker_flagged(self, linter):
        # A leaked ShardWorker keeps a child process, a pipe, and a
        # shared-memory segment alive past the function.
        names = linter.rule_names(
            """
            from repro.shard.worker import ShardWorker


            def spawn(index, slot_bytes):
                worker = ShardWorker(index, 1024, slot_bytes)
                worker.alive()
            """,
            rel=self.SHARD,
        )
        assert "resource-leak" in names

    def test_unreleased_ring_create_flagged(self, linter):
        # ShmRing.create owns a POSIX shm segment: without close() (and
        # unlink on the owner side) the mapping outlives the process.
        names = linter.rule_names(
            """
            from repro.shard.ring import ShmRing


            def allocate(slots, slot_bytes):
                ring = ShmRing.create(slots, slot_bytes)
                ring.push(b"")
            """,
            rel=self.SHARD,
        )
        assert "resource-leak" in names

    def test_attach_side_leak_on_early_return_flagged(self, linter):
        names = linter.rule_names(
            """
            from repro.shard.ring import ShmRing


            def drain(name, skip):
                ring = ShmRing.attach(name)
                if skip:
                    return 0
                consumed = ring.size
                ring.close()
                return consumed
            """,
            rel=self.SHARD,
        )
        assert "resource-leak" in names

    def test_unstopped_fleet_flagged(self, linter):
        names = linter.rule_names(
            """
            from repro.shard.fleet import ShardedFleet


            def launch(sessions):
                fleet = ShardedFleet(sessions, workers=4)
                fleet.start()
            """,
            rel=self.SHARD,
        )
        assert "resource-leak" in names

    def test_stop_on_every_path_is_clean(self, linter):
        names = linter.rule_names(
            """
            from repro.shard.fleet import ShardedFleet


            def run(sessions, body):
                fleet = ShardedFleet(sessions, workers=4)
                fleet.start()
                try:
                    return body(fleet)
                finally:
                    fleet.stop()
            """,
            rel=self.SHARD,
        )
        assert "resource-leak" not in names

    def test_worker_close_is_a_release(self, linter):
        names = linter.rule_names(
            """
            from repro.shard.worker import ShardWorker


            def probe(index, slot_bytes):
                worker = ShardWorker(index, 1024, slot_bytes)
                try:
                    return worker.alive()
                finally:
                    worker.close()
            """,
            rel=self.SHARD,
        )
        assert "resource-leak" not in names

    def test_escape_via_attribute_discharges_obligation(self, linter):
        # The fleet pools workers on self; their close() belongs to the
        # fleet's own stop(), not the spawning function.
        names = linter.rule_names(
            """
            from repro.shard.worker import ShardWorker


            class Pool:
                def grow(self, index, slot_bytes):
                    worker = ShardWorker(index, 1024, slot_bytes)
                    self.workers.append(worker)
            """,
            rel=self.SHARD,
        )
        assert "resource-leak" not in names

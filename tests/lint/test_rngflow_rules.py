"""Gate tests for the rng-provenance rule family."""

from __future__ import annotations


class TestRngReseed:
    def test_constant_reseed_with_rng_param_flagged(self, linter):
        names = linter.rule_names(
            """
            import numpy as np


            def jitter(x, rng: np.random.Generator):
                fresh = np.random.default_rng(0)
                return x + fresh.normal()
            """
        )
        assert "rng-reseed" in names

    def test_none_default_idiom_is_allowed(self, linter):
        # The rebinding element consults the parameter, which is the
        # provenance link the rule requires.
        names = linter.rule_names(
            """
            import numpy as np


            def simulate(x, rng=None):
                rng = rng if rng is not None else np.random.default_rng(0)
                return x + rng.normal()
            """
        )
        assert "rng-reseed" not in names

    def test_seed_from_parameter_is_allowed(self, linter):
        names = linter.rule_names(
            """
            import numpy as np


            def simulate(x, seed):
                rng = np.random.default_rng(seed)
                return x + rng.normal()
            """
        )
        assert "rng-reseed" not in names

    def test_out_of_scope_package_ignored(self, linter):
        names = linter.rule_names(
            """
            import numpy as np


            def pace(rng: np.random.Generator):
                fresh = np.random.default_rng(0)
                return fresh.normal()
            """,
            rel="repro/fleet/snippet.py",
        )
        assert "rng-reseed" not in names

    def test_inline_suppression(self, linter):
        result = linter.lint(
            """
            import numpy as np


            def jitter(x, rng: np.random.Generator):
                fresh = np.random.default_rng(0)  # reprolint: disable=rng-reseed
                return x + fresh.normal()
            """
        )
        assert "rng-reseed" not in [d.rule for d in result.diagnostics]
        assert result.suppressed == 1


class TestRngShadow:
    def test_param_rebound_before_use_flagged(self, linter):
        names = linter.rule_names(
            """
            import numpy as np


            def sample(rng: np.random.Generator):
                rng = np.random.default_rng(7)
                return rng.normal()
            """
        )
        assert "rng-shadow" in names

    def test_param_used_then_rebound_is_allowed(self, linter):
        names = linter.rule_names(
            """
            import numpy as np


            def sample(rng: np.random.Generator):
                if rng is None:
                    rng = np.random.default_rng(7)
                return rng.normal()
            """
        )
        assert "rng-shadow" not in names

    def test_underscore_name_convention_detected(self, linter):
        names = linter.rule_names(
            """
            import numpy as np


            def sample(noise_rng):
                noise_rng = np.random.default_rng(7)
                return noise_rng.normal()
            """
        )
        assert "rng-shadow" in names


class TestRngDead:
    def test_unused_generator_flagged(self, linter):
        names = linter.rule_names(
            """
            import numpy as np


            def f(seed):
                rng = np.random.default_rng(seed)
                return seed + 1
            """
        )
        assert "rng-dead" in names

    def test_used_generator_is_clean(self, linter):
        names = linter.rule_names(
            """
            import numpy as np


            def f(seed):
                rng = np.random.default_rng(seed)
                return rng.normal()
            """
        )
        assert "rng-dead" not in names

    def test_generator_captured_by_closure_is_live(self, linter):
        names = linter.rule_names(
            """
            import numpy as np


            def f(seed):
                rng = np.random.default_rng(seed)

                def draw():
                    return rng.normal()

                return draw
            """
        )
        assert "rng-dead" not in names


class TestUseAfterMove:
    def test_use_after_move_flagged(self, linter):
        names = linter.rule_names(
            """
            def f(registry, make):
                t = make()
                registry.adopt(t)  # reprolint: moves(t)
                t.start()
            """
        )
        assert "use-after-move" in names

    def test_rebinding_restores_ownership(self, linter):
        names = linter.rule_names(
            """
            def f(registry, make):
                t = make()
                registry.adopt(t)  # reprolint: moves(t)
                t = make()
                t.start()
            """
        )
        assert "use-after-move" not in names

    def test_malformed_moves_pragma_is_bad_pragma(self, linter):
        names = linter.rule_names(
            """
            def f(registry, make):
                t = make()
                registry.adopt(t)  # reprolint: moves()
            """
        )
        assert "bad-pragma" in names

"""Gate tests for the dead-flow rule family."""

from __future__ import annotations


class TestUnreachableCode:
    def test_code_after_return_flagged_once(self, linter):
        diags = [
            d
            for d in linter.findings(
                """
                def f(x):
                    return x
                    x = x + 1
                    x = x + 2
                """
            )
            if d.rule == "unreachable-code"
        ]
        assert len(diags) == 1  # region head only, not one per line

    def test_constant_false_branch_flagged(self, linter):
        names = linter.rule_names(
            """
            def f(x):
                if False:
                    x = debug_probe(x)
                return x
            """
        )
        assert "unreachable-code" in names

    def test_reachable_branches_are_clean(self, linter):
        names = linter.rule_names(
            """
            def f(x):
                if x > 0:
                    return 1
                return 0
            """
        )
        assert "unreachable-code" not in names

    def test_while_true_loop_body_is_reachable(self, linter):
        names = linter.rule_names(
            """
            def f(queue):
                while True:
                    item = queue.get()
                    if item is None:
                        return None
            """
        )
        assert "unreachable-code" not in names


class TestDeadStore:
    def test_overwritten_quantity_flagged(self, linter):
        names = linter.rule_names(
            """
            def f(x):
                duration_s = x * 2.0
                duration_s = x * 3.0
                return duration_s
            """
        )
        assert "dead-store" in names

    def test_branch_read_keeps_store_alive(self, linter):
        names = linter.rule_names(
            """
            def f(x, fast):
                duration_s = x * 2.0
                if fast:
                    duration_s = duration_s / 2.0
                return duration_s
            """
        )
        assert "dead-store" not in names

    def test_non_quantity_names_not_policed(self, linter):
        names = linter.rule_names(
            """
            def f(x):
                temp = x * 2.0
                temp = x * 3.0
                return temp
            """
        )
        assert "dead-store" not in names

    def test_underscore_scratch_allowed(self, linter):
        names = linter.rule_names(
            """
            def f(pairs):
                _duration_s = pairs[0]
                return pairs[1]
            """
        )
        assert "dead-store" not in names


class TestDiscardedResult:
    def test_dropped_dsp_return_flagged(self, linter):
        names = linter.rule_names(
            """
            from repro.dsp.filters import fir_filter


            def f(x, taps):
                fir_filter(x, taps)
                return x
            """
        )
        assert "discarded-result" in names

    def test_module_qualified_call_resolved(self, linter):
        names = linter.rule_names(
            """
            from repro.dsp import filters


            def f(x, taps):
                filters.fir_filter(x, taps)
                return x
            """
        )
        assert "discarded-result" in names

    def test_used_result_is_clean(self, linter):
        names = linter.rule_names(
            """
            from repro.dsp.filters import fir_filter


            def f(x, taps):
                y = fir_filter(x, taps)
                return y
            """
        )
        assert "discarded-result" not in names

    def test_unrelated_side_effecting_call_allowed(self, linter):
        names = linter.rule_names(
            """
            import logging


            def f(x):
                logging.info("len=%d", len(x))
                return x
            """
        )
        assert "discarded-result" not in names

    def test_curated_core_function_flagged(self, linter):
        names = linter.rule_names(
            """
            from repro.core.analytics import window_metrics


            def f(events):
                window_metrics(events)
                return events
            """
        )
        assert "discarded-result" in names

"""Tests for repro.dsp.stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.stats import RunningStats, empirical_cdf, mad_sigma, percentile_of


class TestMadSigma:
    def test_gaussian_consistency(self):
        x = np.random.default_rng(0).normal(0, 2.5, 100_000)
        assert mad_sigma(x) == pytest.approx(2.5, rel=0.02)

    def test_robust_to_outliers(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1.0, 10_000)
        x[:500] = 100.0  # 5 % gross outliers
        assert mad_sigma(x) == pytest.approx(1.0, rel=0.1)

    def test_degenerate_inputs(self):
        assert mad_sigma(np.array([])) == 0.0
        assert mad_sigma(np.array([3.0])) == 0.0
        assert mad_sigma(np.full(10, 7.0)) == 0.0


class TestRunningStats:
    def test_matches_numpy(self):
        x = np.random.default_rng(2).normal(size=1000)
        rs = RunningStats()
        rs.extend(x)
        assert rs.mean == pytest.approx(np.mean(x))
        assert rs.variance == pytest.approx(np.var(x))
        assert rs.std == pytest.approx(np.std(x))

    def test_single_value(self):
        rs = RunningStats()
        rs.push(4.0)
        assert rs.mean == 4.0
        assert rs.variance == 0.0

    def test_reset(self):
        rs = RunningStats()
        rs.extend(np.arange(10.0))
        rs.reset()
        assert rs.count == 0 and rs.mean == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_welford_property(self, values):
        rs = RunningStats()
        rs.extend(np.array(values))
        assert rs.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert rs.variance == pytest.approx(np.var(values), rel=1e-6, abs=1e-6)


class TestEmpiricalCdf:
    def test_staircase(self):
        values, probs = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert np.allclose(values, [1, 2, 3])
        assert np.allclose(probs, [1 / 3, 2 / 3, 1.0])

    def test_last_prob_is_one(self):
        _, probs = empirical_cdf(np.random.default_rng(3).normal(size=57))
        assert probs[-1] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([]))

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_monotone(self, values):
        v, p = empirical_cdf(np.array(values))
        assert np.all(np.diff(v) >= 0)
        assert np.all(np.diff(p) > 0)


class TestPercentileOf:
    def test_median(self):
        assert percentile_of(np.arange(101.0), 50) == pytest.approx(50.0)

    def test_bad_q_rejected(self):
        with pytest.raises(ValueError):
            percentile_of(np.arange(10.0), 101)

"""Tests for repro.dsp.filters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.filters import (
    CascadingFilter,
    LoopbackFilter,
    design_lowpass_fir,
    fir_filter,
    moving_average,
    smooth,
)


class TestDesignLowpassFir:
    def test_tap_count(self):
        taps = design_lowpass_fir(26, 0.1)
        assert len(taps) == 27

    def test_unit_dc_gain(self):
        taps = design_lowpass_fir(26, 0.1)
        assert taps.sum() == pytest.approx(1.0)

    def test_linear_phase_symmetry(self):
        taps = design_lowpass_fir(26, 0.1)
        assert np.allclose(taps, taps[::-1])

    def test_passband_and_stopband(self):
        taps = design_lowpass_fir(64, 0.1)
        freqs = np.fft.rfftfreq(4096)
        response = np.abs(np.fft.rfft(taps, n=4096))
        assert response[freqs < 0.05].min() > 0.9
        assert response[freqs > 0.2].max() < 0.05

    @pytest.mark.parametrize("window", ["hamming", "hann", "blackman", "rect"])
    def test_all_windows_normalised(self, window):
        taps = design_lowpass_fir(20, 0.2, window=window)
        assert taps.sum() == pytest.approx(1.0)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            design_lowpass_fir(0, 0.1)

    @pytest.mark.parametrize("cutoff", [0.0, 0.5, -0.1, 1.0])
    def test_rejects_bad_cutoff(self, cutoff):
        with pytest.raises(ValueError):
            design_lowpass_fir(26, cutoff)

    def test_rejects_unknown_window(self):
        with pytest.raises(ValueError):
            design_lowpass_fir(26, 0.1, window="kaiser")


class TestFirFilter:
    def test_preserves_shape(self):
        x = np.random.default_rng(0).normal(size=(5, 100))
        taps = design_lowpass_fir(26, 0.1)
        assert fir_filter(x, taps, axis=1).shape == x.shape

    def test_dc_passthrough(self):
        taps = design_lowpass_fir(26, 0.1)
        x = np.full(200, 3.7)
        assert np.allclose(fir_filter(x, taps), 3.7)

    def test_no_group_delay(self):
        # A slow ramp must stay aligned (interior unaffected by edges).
        x = np.linspace(0, 1, 400)
        y = fir_filter(x, design_lowpass_fir(26, 0.1))
        assert np.allclose(y[50:350], x[50:350], atol=1e-3)

    def test_complex_input_filters_components(self):
        taps = design_lowpass_fir(26, 0.1)
        rng = np.random.default_rng(1)
        x = rng.normal(size=300) + 1j * rng.normal(size=300)
        y = fir_filter(x, taps)
        assert np.allclose(y.real, fir_filter(x.real, taps))
        assert np.allclose(y.imag, fir_filter(x.imag, taps))

    def test_attenuates_high_frequency(self):
        n = np.arange(500)
        hi = np.cos(2 * np.pi * 0.4 * n)
        y = fir_filter(hi, design_lowpass_fir(26, 0.1))
        assert np.abs(y[50:-50]).max() < 0.05

    def test_single_sample(self):
        taps = design_lowpass_fir(4, 0.2)
        assert fir_filter(np.array([2.0]), taps)[0] == pytest.approx(2.0)

    def test_empty_signal(self):
        taps = design_lowpass_fir(4, 0.2)
        assert fir_filter(np.array([]), taps).size == 0

    def test_rejects_empty_taps(self):
        with pytest.raises(ValueError):
            fir_filter(np.ones(10), np.array([]))


class TestMovingAverage:
    def test_constant_preserved(self):
        assert np.allclose(moving_average(np.full(100, 5.0), 10), 5.0)

    def test_window_one_is_identity(self):
        x = np.random.default_rng(2).normal(size=50)
        assert np.allclose(moving_average(x, 1), x)

    def test_noise_reduction_factor(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=20000)
        y = moving_average(x, 25)
        # Variance reduction ~ 1/window for white noise.
        assert np.var(y) == pytest.approx(np.var(x) / 25, rel=0.25)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(10), 0)

    def test_smooth_alias(self):
        x = np.random.default_rng(4).normal(size=300)
        assert np.allclose(smooth(x, 50), moving_average(x, 50))

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_mean_preserved_for_any_window(self, window):
        x = np.linspace(-1, 1, 120)
        y = moving_average(x, window)
        # Reflection padding keeps the global mean close for odd symmetry.
        assert abs(np.mean(y) - np.mean(x)) < 0.05


class TestCascadingFilter:
    def test_paper_defaults(self):
        casc = CascadingFilter()
        assert casc.fir_order == 26
        assert casc.smooth_window == 50
        assert len(casc.taps) == 27

    def test_reduces_noise_keeps_dc(self):
        rng = np.random.default_rng(5)
        x = 1.0 + 0.5 * rng.normal(size=2000)
        y = CascadingFilter().apply(x)
        assert np.std(y) < 0.2 * np.std(x)
        assert np.mean(y) == pytest.approx(1.0, abs=0.05)

    def test_callable_alias(self):
        casc = CascadingFilter()
        x = np.random.default_rng(6).normal(size=100)
        assert np.allclose(casc(x), casc.apply(x))

    def test_axis_selection(self):
        x = np.random.default_rng(7).normal(size=(4, 256))
        casc = CascadingFilter()
        rows = np.stack([casc.apply(row) for row in x])
        assert np.allclose(casc.apply(x, axis=1), rows)


class TestLoopbackFilter:
    def test_first_frame_zero_residue(self):
        lb = LoopbackFilter()
        assert np.allclose(lb.push(np.ones(8)), 0.0)

    def test_static_input_converges_to_zero(self):
        lb = LoopbackFilter(alpha=0.9)
        frame = np.full(4, 2.0 + 1.0j)
        for _ in range(50):
            out = lb.push(frame)
        assert np.abs(out).max() < 1e-6

    def test_step_change_appears_then_decays(self):
        lb = LoopbackFilter(alpha=0.9)
        for _ in range(30):
            lb.push(np.zeros(3))
        first = lb.push(np.ones(3))
        assert np.allclose(first, 1.0)
        for _ in range(100):
            late = lb.push(np.ones(3))
        assert np.abs(late).max() < 1e-3

    def test_batch_matches_streaming(self):
        rng = np.random.default_rng(8)
        frames = rng.normal(size=(40, 6)) + 1j * rng.normal(size=(40, 6))
        stream = LoopbackFilter(alpha=0.95)
        streamed = np.stack([stream.push(f) for f in frames])
        batch = LoopbackFilter(alpha=0.95).apply(frames)
        assert np.allclose(streamed, batch)

    def test_reset_forgets_background(self):
        lb = LoopbackFilter()
        lb.push(np.ones(3))
        lb.reset()
        assert lb.background is None
        assert np.allclose(lb.push(np.full(3, 9.0)), 0.0)

    def test_shape_mismatch_raises(self):
        lb = LoopbackFilter()
        lb.push(np.ones(4))
        with pytest.raises(ValueError):
            lb.push(np.ones(5))

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ValueError):
            LoopbackFilter(alpha=alpha)

"""Property-based tests of the dominant-ring circle fit — the component
the whole drowsy-regime detection stands on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.circlefit import fit_circle_dominant, fit_circle_pratt


def two_ring_scene(center, r_outer, r_inner, frac_inner, span, n, noise, seed):
    rng = np.random.default_rng(seed)
    pts = center + r_outer * np.exp(1j * rng.uniform(0, span, n))
    inner = rng.random(n) < frac_inner
    pts[inner] = center + r_inner * np.exp(1j * rng.uniform(0, span, int(inner.sum())))
    return pts + noise * (rng.normal(size=n) + 1j * rng.normal(size=n))


class TestDominantFitProperties:
    # The fit's documented domain: the open-eye (outer) ring holds a clear
    # majority — true for drowsy drivers, whose eyes are shut for at most
    # ~35-40 % of frames. Near 50/50 mixtures the "dominant" ring is
    # genuinely ambiguous and recovery is not guaranteed.
    @given(
        cx=st.floats(-5, 5),
        cy=st.floats(-5, 5),
        r_outer=st.floats(0.5, 3.0),
        frac_inner=st.floats(0.0, 0.35),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=40, deadline=None)
    def test_recovers_common_center(self, cx, cy, r_outer, frac_inner, seed):
        center = complex(cx, cy)
        pts = two_ring_scene(
            center, r_outer, 0.3 * r_outer, frac_inner,
            span=1.4, n=250, noise=0.01 * r_outer, seed=seed,
        )
        fit = fit_circle_dominant(pts)
        assert abs(fit.center - center) < 0.15 * r_outer
        assert fit.radius == pytest.approx(r_outer, rel=0.15)

    @given(scale=st.floats(1e-6, 1e3), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_scale_equivariance(self, scale, seed):
        pts = two_ring_scene(1 + 1j, 1.0, 0.3, 0.35, 1.2, 200, 0.01, seed)
        base = fit_circle_dominant(pts)
        scaled = fit_circle_dominant(pts * scale)
        assert abs(scaled.center - base.center * scale) < 0.05 * scale
        assert scaled.radius == pytest.approx(base.radius * scale, rel=0.05)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_never_worse_than_plain_on_mixtures(self, seed):
        center = 2 - 1j
        pts = two_ring_scene(center, 1.5, 0.45, 0.35, 1.3, 300, 0.015, seed)
        dominant = fit_circle_dominant(pts)
        plain = fit_circle_pratt(pts)
        assert abs(dominant.center - center) <= abs(plain.center - center) + 0.05

    def test_regression_frac_inner_031_mis_center(self):
        # Regression for a real Hypothesis find (present at seed): at
        # frac_inner≈0.31 the candidate scoring used an acceptance band
        # proportional to the ring radius, so a centre far outside the
        # data saw the whole blob as a razor-thin annulus and out-scored
        # the true centre; the mode-gated iteration then converged to the
        # two-ring compromise circle (centre off by ~0.65 r, radius
        # ~0.4 r). The band is now capped by the data's own spread.
        center = complex(-2.6908, -3.5617)
        r_outer = 2.3722
        pts = two_ring_scene(
            center, r_outer, 0.3 * r_outer, frac_inner=0.3169,
            span=1.4, n=250, noise=0.01 * r_outer, seed=354,
        )
        fit = fit_circle_dominant(pts)
        assert abs(fit.center - center) < 0.15 * r_outer
        assert fit.radius == pytest.approx(r_outer, rel=0.15)

    def test_regression_minority_ring_histogram_split(self):
        # Companion regression: with fixed-edge histogram binning the
        # minority inner ring could win the peak bin when the outer
        # ring's samples split across a bin edge, locking the fit onto
        # the inner ring (right centre, radius ~0.3 r). The mode is now
        # a sliding densest-window estimate, immune to edge splits.
        center = complex(-3.7292, -3.4700)
        r_outer = 2.0146
        pts = two_ring_scene(
            center, r_outer, 0.3 * r_outer, frac_inner=0.3455,
            span=1.4, n=250, noise=0.01 * r_outer, seed=311,
        )
        fit = fit_circle_dominant(pts)
        assert abs(fit.center - center) < 0.15 * r_outer
        assert fit.radius == pytest.approx(r_outer, rel=0.15)

    @given(rotation=st.floats(0, 2 * np.pi))
    @settings(max_examples=20, deadline=None)
    def test_rotation_equivariance(self, rotation):
        pts = two_ring_scene(0j, 1.0, 0.3, 0.3, 1.2, 300, 0.01, seed=8)
        phasor = np.exp(1j * rotation)
        base = fit_circle_dominant(pts)
        rotated = fit_circle_dominant(pts * phasor)
        assert abs(rotated.center - base.center * phasor) < 0.05

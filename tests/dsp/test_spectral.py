"""Tests for repro.dsp.spectral."""

import numpy as np
import pytest

from repro.dsp.spectral import (
    amplitude_spectrum,
    dominant_frequency,
    power_spectrum,
    range_time_map,
    spectrogram,
)


class TestAmplitudeSpectrum:
    def test_tone_peak_at_right_frequency(self):
        fs = 1000.0
        t = np.arange(2000) / fs
        freqs, amp = amplitude_spectrum(np.sin(2 * np.pi * 50 * t), fs)
        assert freqs[np.argmax(amp)] == pytest.approx(50.0, abs=1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            amplitude_spectrum(np.array([]), 1.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            amplitude_spectrum(np.ones((2, 4)), 1.0)


class TestPowerSpectrum:
    def test_parseval(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1024)
        freqs, power = power_spectrum(x, 1.0)
        # One-sided rfft power: interior bins carry both signs.
        total = power[0] + 2 * power[1:-1].sum() + power[-1]
        assert total == pytest.approx(np.sum(x**2), rel=1e-6)

    def test_complex_input_two_sided(self):
        fs = 100.0
        t = np.arange(512) / fs
        x = np.exp(-1j * 2 * np.pi * 10 * t)
        freqs, power = power_spectrum(x, fs)
        assert freqs[np.argmax(power)] == pytest.approx(-10.0, abs=0.5)

    def test_frequencies_sorted_for_complex(self):
        x = np.random.default_rng(1).normal(size=64) * 1j
        freqs, _ = power_spectrum(x, 1.0)
        assert np.all(np.diff(freqs) > 0)


class TestSpectrogram:
    def test_shapes(self):
        x = np.random.default_rng(2).normal(size=4096)
        freqs, times, s = spectrogram(x, fs=100.0, nfft=256, hop=128)
        assert s.shape == (len(freqs), len(times))

    def test_chirp_frequency_increases(self):
        fs = 1000.0
        t = np.arange(8192) / fs
        x = np.sin(2 * np.pi * (20 * t + 40 * t**2 / 2))
        freqs, times, s = spectrogram(x, fs, nfft=512)
        first = freqs[np.argmax(s[:, 0])]
        last = freqs[np.argmax(s[:, -1])]
        assert last > first

    def test_short_signal_rejected(self):
        with pytest.raises(ValueError):
            spectrogram(np.ones(10), 1.0, nfft=256)


class TestRangeTimeMap:
    def test_power_of_complex(self):
        frames = np.array([[1 + 1j, 2 + 0j]])
        assert np.allclose(range_time_map(frames), [[2.0, 4.0]])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            range_time_map(np.ones(5))


class TestDominantFrequency:
    def test_finds_tone(self):
        fs = 25.0
        t = np.arange(1500) / fs
        x = 3.0 + np.sin(2 * np.pi * 0.25 * t)
        assert dominant_frequency(x, fs) == pytest.approx(0.25, abs=0.02)

    def test_fmin_excludes_low_band(self):
        fs = 25.0
        t = np.arange(1500) / fs
        x = np.sin(2 * np.pi * 0.25 * t) + 0.5 * np.sin(2 * np.pi * 1.2 * t)
        assert dominant_frequency(x, fs, fmin=0.8) == pytest.approx(1.2, abs=0.05)

    def test_fmin_beyond_nyquist_rejected(self):
        with pytest.raises(ValueError):
            dominant_frequency(np.ones(64), 1.0, fmin=10.0)

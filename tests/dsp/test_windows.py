"""Tests for repro.dsp.windows."""

import numpy as np
import pytest

from repro.dsp.windows import hopping_windows, sliding_windows, window_starts


class TestWindowStarts:
    def test_exact_fit(self):
        assert list(window_starts(10, 5, 5)) == [0, 5]

    def test_partial_tail_dropped(self):
        assert list(window_starts(11, 5, 5)) == [0, 5]

    def test_signal_shorter_than_window(self):
        assert window_starts(3, 5, 1).size == 0

    def test_stride_one(self):
        assert list(window_starts(5, 3, 1)) == [0, 1, 2]

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            window_starts(10, 0, 1)
        with pytest.raises(ValueError):
            window_starts(10, 1, 0)


class TestIteration:
    def test_sliding_covers_all(self):
        x = np.arange(10)
        windows = list(sliding_windows(x, 4))
        assert len(windows) == 7
        start, view = windows[0]
        assert start == 0 and np.array_equal(view, [0, 1, 2, 3])

    def test_hopping_views_not_copies(self):
        x = np.arange(10.0)
        _, view = next(iter(hopping_windows(x, 5, 5)))
        x[0] = 99.0
        assert view[0] == 99.0

    def test_2d_windows_slice_rows(self):
        x = np.arange(20).reshape(10, 2)
        starts = [s for s, _ in hopping_windows(x, 4, 3)]
        assert starts == [0, 3, 6]
        for s, view in hopping_windows(x, 4, 3):
            assert view.shape == (4, 2)

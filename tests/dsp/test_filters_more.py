"""Additional filter coverage: frequency-domain properties and edges."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.filters import CascadingFilter, LoopbackFilter, design_lowpass_fir, fir_filter


class TestFrequencyResponses:
    @pytest.mark.parametrize("cutoff", [0.05, 0.1, 0.2, 0.35])
    def test_halfpower_near_cutoff(self, cutoff):
        taps = design_lowpass_fir(128, cutoff)
        response = np.abs(np.fft.rfft(taps, n=8192))
        freqs = np.fft.rfftfreq(8192)
        half = freqs[np.argmin(np.abs(response - 0.5))]
        assert half == pytest.approx(cutoff, abs=0.02)

    @given(cutoff=st.floats(0.02, 0.45))
    @settings(max_examples=20, deadline=None)
    def test_energy_never_amplified(self, cutoff):
        taps = design_lowpass_fir(64, cutoff)
        response = np.abs(np.fft.rfft(taps, n=4096))
        assert response.max() <= 1.05  # small ripple allowed, no gain

    def test_cascade_is_composition(self):
        casc = CascadingFilter(fir_order=26, cutoff=0.1, smooth_window=16)
        x = np.random.default_rng(0).normal(size=512)
        manual = fir_filter(x, casc.taps)
        from repro.dsp.filters import moving_average

        manual = moving_average(manual, 16)
        assert np.allclose(casc.apply(x), manual)


class TestLoopbackEdgeCases:
    def test_complex_background_tracked(self):
        lb = LoopbackFilter(alpha=0.9)
        frame = np.array([1 + 2j, -3 + 0.5j])
        for _ in range(100):
            lb.push(frame)
        assert np.allclose(lb.background, frame, atol=1e-6)

    def test_apply_continues_streaming_state(self):
        rng = np.random.default_rng(1)
        frames = rng.normal(size=(30, 4)) + 0j
        a = LoopbackFilter(alpha=0.95)
        first = a.apply(frames[:15])
        second = a.apply(frames[15:])
        b = LoopbackFilter(alpha=0.95)
        full = b.apply(frames)
        assert np.allclose(np.concatenate([first, second]), full)

    def test_empty_batch(self):
        lb = LoopbackFilter()
        out = lb.apply(np.zeros((0, 4)))
        assert out.shape == (0, 4)

    def test_sinusoid_passband_of_highpass(self):
        # The loopback output passes fast oscillations nearly unchanged.
        lb = LoopbackFilter(alpha=0.995)
        t = np.arange(2000) / 25.0
        x = np.sin(2 * np.pi * 1.0 * t)[:, None]  # 1 Hz
        out = lb.apply(x + 0j)
        # After warm-up the oscillation amplitude survives.
        assert np.abs(out[500:]).max() > 0.9

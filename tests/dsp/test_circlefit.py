"""Tests for repro.dsp.circlefit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.circlefit import (
    dominant_radius,
    fit_circle_dominant,
    fit_circle_kasa,
    fit_circle_pratt,
    fit_circle_robust,
    fit_circle_taubin,
    ring_concentration,
)

ALL_FITS = [fit_circle_kasa, fit_circle_pratt, fit_circle_taubin, fit_circle_dominant]


def arc(center, radius, start, stop, n, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    angles = np.linspace(start, stop, n)
    pts = center + radius * np.exp(1j * angles)
    if noise:
        pts = pts + noise * (rng.normal(size=n) + 1j * rng.normal(size=n))
    return pts


class TestExactCircles:
    @pytest.mark.parametrize("fit", ALL_FITS)
    def test_full_circle(self, fit):
        result = fit(arc(1 + 2j, 3.0, 0, 2 * np.pi, 100))
        assert result.center == pytest.approx(1 + 2j, abs=1e-9)
        assert result.radius == pytest.approx(3.0, abs=1e-9)

    @pytest.mark.parametrize("fit", ALL_FITS)
    def test_short_arc(self, fit):
        result = fit(arc(-5 + 0.5j, 2.0, 0.3, 1.0, 60))
        assert result.center == pytest.approx(-5 + 0.5j, abs=1e-6)

    @pytest.mark.parametrize("fit", ALL_FITS)
    def test_three_points(self, fit):
        pts = np.array([1 + 0j, 0 + 1j, -1 + 0j])  # unit circle
        result = fit(pts)
        assert result.center == pytest.approx(0j, abs=1e-9)
        assert result.radius == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("fit", ALL_FITS)
    def test_rmse_zero_on_exact(self, fit):
        result = fit(arc(0, 1.0, 0, 2 * np.pi, 50))
        assert result.rmse == pytest.approx(0.0, abs=1e-9)


class TestNoisyCircles:
    @pytest.mark.parametrize("fit", [fit_circle_pratt, fit_circle_taubin])
    def test_noisy_arc_center(self, fit):
        result = fit(arc(2 + 3j, 1.5, 0, 1.2, 200, noise=1e-3, seed=1))
        assert abs(result.center - (2 + 3j)) < 0.02

    def test_pratt_beats_kasa_on_short_noisy_arc(self):
        pts = arc(0, 10.0, 0, 0.5, 300, noise=0.02, seed=2)
        pratt = fit_circle_pratt(pts)
        kasa = fit_circle_kasa(pts)
        # Kåsa's small-radius bias on short arcs (the paper's reason for
        # choosing Pratt).
        assert abs(pratt.radius - 10.0) < abs(kasa.radius - 10.0)

    def test_rmse_reflects_noise(self):
        result = fit_circle_pratt(arc(0, 1.0, 0, 2 * np.pi, 500, noise=0.01, seed=3))
        assert 0.005 < result.rmse < 0.03


class TestInputHandling:
    def test_xy_array_accepted(self):
        angles = np.linspace(0, 2 * np.pi, 50)
        xy = np.column_stack([np.cos(angles), np.sin(angles)])
        result = fit_circle_pratt(xy)
        assert result.radius == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("fit", ALL_FITS)
    def test_too_few_points(self, fit):
        with pytest.raises(ValueError):
            fit(np.array([1 + 0j, 0 + 1j]))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            fit_circle_pratt(np.ones((4, 3)))

    def test_collinear_points_fall_back(self):
        pts = np.linspace(0, 1, 20) + 0j
        result = fit_circle_pratt(pts)  # must not raise
        assert np.isfinite(result.radius)

    def test_circlefit_helpers(self):
        result = fit_circle_pratt(arc(1 + 1j, 2.0, 0, 2 * np.pi, 64))
        assert result.cx == pytest.approx(1.0, abs=1e-9)
        assert result.cy == pytest.approx(1.0, abs=1e-9)
        d = result.distance_to(np.array([1 + 1j]))
        assert d[0] == pytest.approx(0.0, abs=1e-9)


class TestRobustAndDominant:
    def two_ring(self, frac_inner=0.35, n=400, seed=4):
        rng = np.random.default_rng(seed)
        pts = 2 + 3j + 1.5 * np.exp(1j * rng.uniform(0, 1.2, n))
        inner = rng.random(n) < frac_inner
        pts[inner] = 2 + 3j + 0.4 * np.exp(1j * rng.uniform(0, 1.2, int(inner.sum())))
        pts += 0.01 * (rng.normal(size=n) + 1j * rng.normal(size=n))
        return pts

    def test_dominant_recovers_common_center(self):
        result = fit_circle_dominant(self.two_ring())
        assert abs(result.center - (2 + 3j)) < 0.05
        assert result.radius == pytest.approx(1.5, abs=0.05)

    def test_plain_fit_is_biased_on_two_rings(self):
        pts = self.two_ring()
        plain = fit_circle_pratt(pts)
        dominant = fit_circle_dominant(pts)
        assert abs(dominant.center - (2 + 3j)) < abs(plain.center - (2 + 3j))

    def test_dominant_matches_plain_on_clean_arc(self):
        pts = arc(1 - 1j, 2.0, 0.2, 1.4, 150, noise=1e-3, seed=5)
        dominant = fit_circle_dominant(pts)
        plain = fit_circle_pratt(pts)
        assert abs(dominant.center - plain.center) < 0.05

    def test_robust_trims_outliers(self):
        # Moderate contamination: 5 % of samples displaced radially by
        # ~30 % of the radius. (Gross far-away outliers distort the
        # *initial* algebraic fit beyond what residual trimming can
        # recover — that failure mode is exactly why fit_circle_dominant
        # exists and is covered by test_dominant_recovers_common_center.)
        rng = np.random.default_rng(6)
        pts = arc(0, 1.0, 0, 2 * np.pi, 200, noise=0.005, seed=6)
        bad = rng.choice(200, size=10, replace=False)
        pts[bad] *= 1.3
        plain = fit_circle_pratt(pts)
        robust = fit_circle_robust(pts, trim=0.3)
        assert abs(robust.center) < abs(plain.center) + 1e-12
        assert robust.radius == pytest.approx(1.0, abs=0.02)

    @pytest.mark.parametrize("method", ["pratt", "kasa", "taubin"])
    def test_methods_accepted(self, method):
        pts = arc(0, 1.0, 0, 2 * np.pi, 60)
        assert fit_circle_dominant(pts, method=method).radius == pytest.approx(1.0, abs=1e-6)

    def test_unknown_method_rejected(self):
        pts = arc(0, 1.0, 0, 1.0, 30)
        with pytest.raises(ValueError):
            fit_circle_dominant(pts, method="ransac")
        with pytest.raises(ValueError):
            fit_circle_robust(pts, method="ransac")

    def test_bad_band_rejected(self):
        pts = arc(0, 1.0, 0, 1.0, 30)
        with pytest.raises(ValueError):
            fit_circle_dominant(pts, band=0.0)

    def test_ring_concentration_peaks_at_true_center(self):
        pts = self.two_ring()
        assert ring_concentration(pts, 2 + 3j) > ring_concentration(pts, 2.8 + 3.6j)

    def test_dominant_radius_mode(self):
        r = np.concatenate([np.full(70, 1.5), np.full(30, 0.4)])
        r = r + np.random.default_rng(7).normal(0, 0.01, 100)
        assert dominant_radius(r) == pytest.approx(1.5, abs=0.1)

    def test_dominant_radius_degenerate(self):
        assert dominant_radius(np.full(10, 2.0)) == pytest.approx(2.0)

    def test_dominant_radius_empty_rejected(self):
        with pytest.raises(ValueError):
            dominant_radius(np.array([]))


class TestPropertyBased:
    @given(
        cx=st.floats(-10, 10),
        cy=st.floats(-10, 10),
        radius=st.floats(0.1, 50),
        span=st.floats(1.0, 2 * np.pi),
    )
    @settings(max_examples=40, deadline=None)
    def test_pratt_recovers_any_circle(self, cx, cy, radius, span):
        pts = arc(complex(cx, cy), radius, 0, span, 80)
        result = fit_circle_pratt(pts)
        assert abs(result.center - complex(cx, cy)) < 1e-4 * max(radius, 1.0)
        assert result.radius == pytest.approx(radius, rel=1e-4)

    @given(scale=st.floats(1e-6, 1e6))
    @settings(max_examples=25, deadline=None)
    def test_scale_invariance(self, scale):
        # The eigen-solver tolerance must not depend on absolute scale
        # (the I/Q data lives at ~1e-4).
        pts = scale * arc(1 + 1j, 0.5, 0.1, 1.3, 100, noise=1e-3, seed=8)
        result = fit_circle_pratt(pts)
        assert abs(result.center - scale * (1 + 1j)) < 0.05 * scale

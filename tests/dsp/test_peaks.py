"""Tests for repro.dsp.peaks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.peaks import alternating_extrema, local_maxima, local_minima


class TestLocalMaxima:
    def test_simple_peak(self):
        x = np.array([0, 1, 3, 1, 0], dtype=float)
        assert list(local_maxima(x)) == [2]

    def test_multiple_peaks(self):
        x = np.array([0, 2, 0, 3, 0, 1, 0], dtype=float)
        assert list(local_maxima(x)) == [1, 3, 5]

    def test_plateau_center(self):
        x = np.array([0, 1, 2, 2, 2, 1, 0], dtype=float)
        assert list(local_maxima(x)) == [3]

    def test_monotone_has_no_interior_peaks(self):
        assert local_maxima(np.arange(10.0)).size == 0

    def test_endpoints_never_peaks(self):
        x = np.array([5, 1, 1, 1, 5], dtype=float)
        assert 0 not in local_maxima(x)
        assert 4 not in local_maxima(x)

    def test_min_distance_keeps_larger(self):
        x = np.zeros(20)
        x[5], x[8] = 2.0, 3.0
        kept = local_maxima(x, min_distance=5)
        assert list(kept) == [8]

    def test_short_signal(self):
        assert local_maxima(np.array([1.0, 2.0])).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            local_maxima(np.ones((3, 3)))


class TestLocalMinima:
    def test_mirror_of_maxima(self):
        x = np.random.default_rng(0).normal(size=200)
        assert np.array_equal(local_minima(x), local_maxima(-x))

    def test_simple_valley(self):
        x = np.array([3, 1, 0, 1, 3], dtype=float)
        assert list(local_minima(x)) == [2]


class TestAlternatingExtrema:
    def test_alternation_invariant(self):
        x = np.sin(np.linspace(0, 20, 500)) + 0.05 * np.random.default_rng(1).normal(size=500)
        exts = alternating_extrema(x)
        kinds = [e.kind for e in exts]
        assert all(a != b for a, b in zip(kinds, kinds[1:]))

    def test_indices_sorted(self):
        x = np.random.default_rng(2).normal(size=300)
        exts = alternating_extrema(x)
        idx = [e.index for e in exts]
        assert idx == sorted(idx)

    def test_sine_extrema_count(self):
        t = np.linspace(0, 4 * np.pi, 1000)
        exts = alternating_extrema(np.sin(t))
        # 2 maxima + 2 minima inside 2 periods.
        assert len(exts) == 4

    def test_same_kind_run_keeps_extreme(self):
        # Two maxima with no minimum between them (monotone plateau dip
        # removed by construction): craft ascending double peak.
        x = np.array([0, 2, 1.5, 3, 0], dtype=float)
        exts = alternating_extrema(x)
        kinds = [e.kind for e in exts]
        assert all(a != b for a, b in zip(kinds, kinds[1:]))

    def test_extremum_values_match_signal(self):
        x = np.random.default_rng(3).normal(size=100)
        for e in alternating_extrema(x):
            assert e.value == x[e.index]

    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_alternation_for_any_signal(self, values):
        exts = alternating_extrema(np.array(values))
        kinds = [e.kind for e in exts]
        assert all(a != b for a, b in zip(kinds, kinds[1:]))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=3, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_max_above_min_between_neighbours(self, values):
        x = np.array(values)
        exts = alternating_extrema(x)
        for a, b in zip(exts, exts[1:]):
            if a.kind == "max":
                assert a.value >= b.value
            else:
                assert a.value <= b.value

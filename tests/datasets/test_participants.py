"""Tests for repro.datasets.participants."""

import pytest

from repro.datasets import (
    EYE_SIZE_LEVELS,
    TABLE1_MORNING_RATES,
    TABLE1_NIGHT_RATES,
    study_participants,
    table1_participants,
)


class TestTable1Cohort:
    def test_eight_participants(self):
        assert len(table1_participants()) == 8

    def test_night_rates_always_higher(self):
        # Table I's core observation: everyone blinks more when lethargic.
        for m, n in zip(TABLE1_MORNING_RATES, TABLE1_NIGHT_RATES):
            assert n > m

    def test_profiles_encode_table_rates(self):
        for p, m, n in zip(table1_participants(), TABLE1_MORNING_RATES, TABLE1_NIGHT_RATES):
            assert p.awake.rate_per_min == pytest.approx(m)
            assert p.drowsy.rate_per_min == pytest.approx(n)

    def test_paper_reported_values_present(self):
        # The seven columns the paper actually prints.
        assert set(TABLE1_MORNING_RATES) >= {20, 21, 19, 18, 22}
        assert 30 in TABLE1_NIGHT_RATES


class TestStudyCohort:
    def test_twelve_participants(self):
        assert len(study_participants()) == 12

    def test_names_unique(self):
        names = [p.name for p in study_participants()]
        assert len(set(names)) == 12

    def test_glasses_diversity(self):
        kinds = {p.glasses for p in study_participants()}
        assert {"none", "myopia", "sunglasses"} <= kinds

    def test_drowsy_rate_exceeds_awake_for_everyone(self):
        for p in study_participants():
            assert p.drowsy.rate_per_min > p.awake.rate_per_min

    def test_eye_size_spread(self):
        widths = [p.eye.width_m for p in study_participants()]
        assert max(widths) - min(widths) >= 0.008

    def test_deterministic_population(self):
        a = study_participants()
        b = study_participants()
        assert [p.name for p in a] == [p.name for p in b]
        assert [p.eye.width_m for p in a] == [p.eye.width_m for p in b]


class TestEyeSizeLevels:
    def test_six_levels(self):
        assert list(EYE_SIZE_LEVELS) == ["S1", "S2", "S3", "S4", "S5", "S6"]

    def test_smallest_is_papers(self):
        assert EYE_SIZE_LEVELS["S1"] == (0.035, 0.008)  # 3.5 × 0.8 cm

    def test_monotone_growth(self):
        sizes = list(EYE_SIZE_LEVELS.values())
        for (w1, h1), (w2, h2) in zip(sizes, sizes[1:]):
            assert w2 > w1 and h2 > h1

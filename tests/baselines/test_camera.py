"""Tests for the simulated camera baseline."""

import numpy as np
import pytest

from repro.baselines.camera import (
    EAR_CLOSED,
    EAR_OPEN,
    CameraModel,
    EarBlinkDetector,
    simulate_ear_series,
)
from repro.eval.metrics import score_blink_detection
from repro.physio import ParticipantProfile


class TestCameraModel:
    def test_noise_grows_in_darkness(self):
        day = CameraModel(illumination_lux=5000)
        night = CameraModel(illumination_lux=1.0)
        assert night.ear_noise_sigma() > 10 * day.ear_noise_sigma()

    def test_motion_blur_adds_noise(self):
        cam = CameraModel()
        assert cam.ear_noise_sigma(vibration_rms_m=1e-3) > cam.ear_noise_sigma(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CameraModel(illumination_lux=0.0)
        with pytest.raises(ValueError):
            CameraModel(frame_rate_hz=0.0)


class TestEarSeries:
    def test_ear_range(self):
        ear, _ = simulate_ear_series(
            ParticipantProfile("C"), 30.0, CameraModel(illumination_lux=5000),
            rng=np.random.default_rng(0),
        )
        assert ear.mean() > 0.2  # mostly open
        assert ear.min() < EAR_OPEN

    def test_blinks_dip_the_ear(self):
        cam = CameraModel(illumination_lux=50_000)  # nearly noiseless
        ear, events = simulate_ear_series(
            ParticipantProfile("C"), 30.0, cam, rng=np.random.default_rng(1)
        )
        for e in events:
            k = int(e.center_s * cam.frame_rate_hz)
            assert ear[k] < EAR_CLOSED + 0.1

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            simulate_ear_series(ParticipantProfile("C"), 0.0, CameraModel())


class TestEarBlinkDetector:
    def test_daylight_near_perfect(self):
        cam = CameraModel(illumination_lux=5000)
        ear, events = simulate_ear_series(
            ParticipantProfile("C"), 60.0, cam, rng=np.random.default_rng(2)
        )
        times = EarBlinkDetector().detect(ear, cam.frame_rate_hz)
        score = score_blink_detection(np.array([e.center_s for e in events]), times)
        assert score.f1 > 0.9

    def test_night_degrades(self):
        # The paper's Sec. I motivation: low light breaks the camera.
        p = ParticipantProfile("C")
        f1 = {}
        for lux in (5000.0, 1.0):
            cam = CameraModel(illumination_lux=lux)
            ear, events = simulate_ear_series(p, 60.0, cam,
                                              rng=np.random.default_rng(3))
            times = EarBlinkDetector().detect(ear, cam.frame_rate_hz)
            score = score_blink_detection(
                np.array([e.center_s for e in events]), times
            )
            f1[lux] = score.f1
        assert f1[1.0] < 0.5 < f1[5000.0]

    def test_occlusion_rejected(self):
        # A long eyes-closed stretch (occlusion/sleep) is not one blink.
        ear = np.full(300, EAR_OPEN)
        ear[50:250] = EAR_CLOSED  # ~6.7 s at 30 FPS
        times = EarBlinkDetector(max_duration_s=2.0).detect(ear, 30.0)
        assert len(times) == 0

    def test_single_frame_noise_rejected(self):
        ear = np.full(300, EAR_OPEN)
        ear[100] = 0.0
        assert len(EarBlinkDetector(min_frames=2).detect(ear, 30.0)) == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            EarBlinkDetector(close_threshold=0.3, open_threshold=0.2)
        with pytest.raises(ValueError):
            EarBlinkDetector().detect(np.ones(10), 0.0)

"""Tests for repro.baselines: the ablations must behave as the paper argues."""

import numpy as np
import pytest

from repro.baselines import (
    AmplitudeDetector,
    PhaseDetector,
    SpectralRateEstimator,
    amplitude_bin_config,
    kasa_fit_config,
    max_variance_bin_config,
    static_view_config,
    taubin_fit_config,
)
from repro.core.pipeline import BlinkRadar
from repro.eval.metrics import score_blink_detection


class TestAmplitudeDetector:
    def test_runs_and_returns_events(self, lab_trace):
        det = AmplitudeDetector(25.0)
        events = det.detect(lab_trace.frames)
        for e in events:
            assert 0 <= e.time_s <= lab_trace.duration_s

    def test_worse_than_full_pipeline_under_maneuvers(self):
        # On benign roads the 1-D amplitude observable can ride its luck;
        # under heavy body sway (the paper's motion-robustness setting) the
        # I/Q viewing position wins structurally.
        from repro.physio import ParticipantProfile
        from repro.sim import Scenario, simulate

        full_acc, amp_acc = [], []
        for seed in (91, 92):
            scenario = Scenario(
                participant=ParticipantProfile("MNV"), road="roundabout",
                duration_s=60.0, allow_posture_shifts=False,
            )
            trace = simulate(scenario, seed=seed)
            full = BlinkRadar(25.0).detect(trace.frames)
            full_acc.append(
                score_blink_detection(trace.blink_times_s, full.event_times_s).accuracy
            )
            amp = AmplitudeDetector(25.0)
            amp_acc.append(
                score_blink_detection(
                    trace.blink_times_s, amp.event_times(trace.frames)
                ).accuracy
            )
        assert np.mean(full_acc) > np.mean(amp_acc)

    def test_short_capture_returns_empty(self):
        det = AmplitudeDetector(25.0)
        assert det.detect(np.zeros((30, 16), dtype=complex)) == []

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            AmplitudeDetector(25.0).detect(np.zeros(100))

    def test_bad_frame_rate(self):
        with pytest.raises(ValueError):
            AmplitudeDetector(0.0)


class TestPhaseDetector:
    def test_runs(self, lab_trace):
        events = PhaseDetector(25.0).detect(lab_trace.frames)
        assert isinstance(events, list)

    def test_phase_observable_is_motion_dominated(self, lab_trace):
        # The phase detector fires mostly on head motion, so its precision
        # against true blinks must be poor compared with the pipeline.
        full = BlinkRadar(25.0).detect(lab_trace.frames)
        full_score = score_blink_detection(lab_trace.blink_times_s, full.event_times_s)
        phase = PhaseDetector(25.0)
        phase_score = score_blink_detection(
            lab_trace.blink_times_s, phase.event_times(lab_trace.frames)
        )
        assert full_score.f1 >= phase_score.f1


class TestSpectralRateEstimator:
    def test_estimate_in_band(self, lab_trace):
        rate = SpectralRateEstimator(25.0).rate_per_min(lab_trace.frames)
        assert 9.0 <= rate <= 42.0

    def test_fails_to_track_true_rate(self, lab_trace, drowsy_trace):
        # The whole point of the baseline: the spectral "blink line" does
        # not follow the true rate the way event counting does.
        est = SpectralRateEstimator(25.0)
        err_spectral = abs(
            est.rate_per_min(lab_trace.frames) - lab_trace.blink_rate_per_min()
        )
        detected = BlinkRadar(25.0).detect(lab_trace.frames)
        err_counting = abs(detected.blink_rate_per_min() - lab_trace.blink_rate_per_min())
        assert err_counting <= err_spectral + 1.0

    def test_band_validation(self):
        with pytest.raises(ValueError):
            SpectralRateEstimator(25.0, band_hz=(0.5, 0.1))

    def test_short_capture_rejected(self):
        with pytest.raises(ValueError):
            SpectralRateEstimator(25.0).rate_per_min(np.zeros((4, 8), dtype=complex))


class TestAblationConfigs:
    def test_bin_strategy_overrides(self):
        assert amplitude_bin_config().bin_strategy == "max_amplitude"
        assert max_variance_bin_config().bin_strategy == "max_variance"

    def test_fit_method_overrides(self):
        assert kasa_fit_config().viewpos_method == "kasa"
        assert taubin_fit_config().viewpos_method == "taubin"

    def test_static_view_disables_updates(self):
        cfg = static_view_config()
        assert cfg.bin_reselect_interval > 10**6
        assert cfg.viewpos_update_interval > 10**6

    def test_ablated_bin_selection_hurts(self, lab_trace):
        full = BlinkRadar(25.0).detect(lab_trace.frames)
        full_score = score_blink_detection(lab_trace.blink_times_s, full.event_times_s)
        ablated = BlinkRadar(25.0, config=max_variance_bin_config()).detect(
            lab_trace.frames
        )
        ablated_score = score_blink_detection(
            lab_trace.blink_times_s, ablated.event_times_s
        )
        assert full_score.accuracy > ablated_score.accuracy

    def test_ablation_configs_still_run(self, lab_trace):
        for cfg in (kasa_fit_config(), taubin_fit_config(), static_view_config()):
            result = BlinkRadar(25.0, config=cfg).detect(lab_trace.frames[:500])
            assert result.n_frames == 500

"""End-to-end integration tests: scenario → device stack → pipeline → metrics."""

import numpy as np
import pytest

from repro import BlinkRadar, Scenario, simulate
from repro.core.drowsy import BlinkRateClassifier
from repro.eval.metrics import score_blink_detection
from repro.eval.runner import evaluate_drowsy_battery
from repro.hardware import FrameStream, SpiBus, UwbRadarDevice, XepDriver
from repro.physio import ParticipantProfile


class TestThroughHardwareStack:
    def test_detection_through_spi_and_adc(self, lab_trace):
        """The full loop of the paper's Fig. 3, including quantisation and
        the SPI wire, must detect essentially what the direct path detects."""
        device = UwbRadarDevice(frame_source=lab_trace.frames)
        driver = XepDriver(SpiBus(device), n_bins=lab_trace.n_bins)
        driver.probe()
        driver.configure(frame_rate_div=4)
        driver.start()
        radar = BlinkRadar(25.0)
        for _, frame in FrameStream(driver, device, n_frames=lab_trace.n_frames):
            radar.process_frame(frame)
        hw_times = [e.time_s for e in radar.stream_events]
        direct = BlinkRadar(25.0).detect(lab_trace.frames)
        # Quantisation is far below the noise floor: same events ± one.
        assert abs(len(hw_times) - len(direct.events)) <= 1
        score = score_blink_detection(lab_trace.blink_times_s, np.array(hw_times))
        assert score.accuracy >= 0.7


class TestDrowsinessEndToEnd:
    @pytest.mark.slow
    def test_per_user_battery(self):
        participant = ParticipantProfile("E2E")
        awake = Scenario(participant=participant, state="awake", duration_s=60.0,
                         allow_posture_shifts=False)
        drowsy = Scenario(participant=participant, state="drowsy", duration_s=60.0,
                          allow_posture_shifts=False)
        accuracy = evaluate_drowsy_battery(
            awake, drowsy, train_seeds=[1, 2], test_seeds=[3, 4], window_s=60.0
        )
        assert accuracy >= 0.75

    def test_detected_rates_separate_states(self):
        participant = ParticipantProfile("SEP")
        rates = {}
        for state in ("awake", "drowsy"):
            sc = Scenario(participant=participant, state=state, duration_s=60.0,
                          allow_posture_shifts=False)
            tr = simulate(sc, seed=21)
            res = BlinkRadar(25.0).detect(tr.frames)
            rates[state] = res.blink_rate_per_min()
        assert rates["drowsy"] > rates["awake"]


class TestDeterminism:
    def test_full_pipeline_deterministic(self, lab_trace):
        a = BlinkRadar(25.0).detect(lab_trace.frames)
        b = BlinkRadar(25.0).detect(lab_trace.frames)
        assert [e.frame_index for e in a.events] == [e.frame_index for e in b.events]
        assert np.allclose(a.relative_distance, b.relative_distance, equal_nan=True)


class TestClassifierOnGroundTruth:
    def test_ground_truth_rates_trivially_separable(self):
        """Sanity anchor: with perfect blink detection the drowsiness
        problem is easy — any pipeline accuracy loss comes from detection,
        not from the classifier."""
        participant = ParticipantProfile("GT")
        awake_rates, drowsy_rates = [], []
        for seed in (31, 32, 33):
            for state, sink in (("awake", awake_rates), ("drowsy", drowsy_rates)):
                sc = Scenario(participant=participant, state=state, duration_s=60.0,
                              allow_posture_shifts=False)
                sink.append(simulate(sc, seed=seed).blink_rate_per_min())
        clf = BlinkRateClassifier().fit(np.array(awake_rates), np.array(drowsy_rates))
        correct = sum(clf.classify(r) == "awake" for r in awake_rates)
        correct += sum(clf.classify(r) == "drowsy" for r in drowsy_rates)
        assert correct >= 5  # at most one confusion among 6 windows

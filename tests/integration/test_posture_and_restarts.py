"""Integration: posture shifts, restarts and recovery."""

import numpy as np
import pytest

from repro.core.pipeline import BlinkRadar
from repro.eval.metrics import score_blink_detection
from repro.physio import ParticipantProfile
from repro.rf.geometry import SensorPose
from repro.sim import Scenario, simulate


class TestPostureSessions:
    @pytest.mark.slow
    def test_accuracy_survives_posture_shifts(self):
        """Sessions with posture shifts stay in a usable regime — the
        adaptive update / restart machinery earns its keep here."""
        accs = []
        for seed in (41, 42, 43):
            scenario = Scenario(
                participant=ParticipantProfile("PST", restlessness=2.0),
                duration_s=90.0, road="smooth_highway",
            )
            trace = simulate(scenario, seed=seed)
            result = BlinkRadar(25.0).detect(trace.frames)
            accs.append(
                score_blink_detection(trace.blink_times_s, result.event_times_s).accuracy
            )
        assert np.mean(accs) >= 0.6
        assert max(accs) >= 0.75

    def test_spliced_large_move_recovers(self):
        """After a 4 cm body move the detector restarts (or re-converges)
        and keeps detecting in the second half."""
        near = Scenario(participant=ParticipantProfile("SPL"), duration_s=30.0,
                        pose=SensorPose(distance_m=0.40), allow_posture_shifts=False)
        far = Scenario(participant=ParticipantProfile("SPL"), duration_s=30.0,
                       pose=SensorPose(distance_m=0.44), allow_posture_shifts=False)
        t_near, t_far = simulate(near, seed=8), simulate(far, seed=9)
        frames = np.concatenate([t_near.frames, t_far.frames])
        result = BlinkRadar(25.0).detect(frames)
        # Score only the second half, excluding 5 s of re-acquisition.
        second_truth = t_far.blink_times_s + 30.0
        second_truth = second_truth[second_truth > 36.0]
        detected = result.event_times_s
        score = score_blink_detection(second_truth, detected[detected > 36.0])
        assert score.accuracy >= 0.6


class TestRestartCosts:
    def test_restart_blind_window_misses_blinks(self):
        """A restart's 2 s cold start is genuinely blind — the mechanism
        behind the paper's consecutive-miss statistics (Fig. 15(a))."""
        scenario = Scenario(participant=ParticipantProfile("BLD"),
                            duration_s=40.0, allow_posture_shifts=False)
        trace = simulate(scenario, seed=12)
        result = BlinkRadar(25.0).detect(trace.frames)
        # Blinks during the initial cold start are never detected.
        for e in result.events:
            assert e.time_s >= 2.0

"""Integration: the corpus workflow (generate → load → evaluate)."""

import numpy as np
import pytest

from repro.core.pipeline import BlinkRadar
from repro.datasets.generators import generate_study_corpus, load_manifest
from repro.datasets.participants import study_participants
from repro.eval.metrics import score_blink_detection


@pytest.mark.slow
def test_corpus_end_to_end(tmp_path):
    """A downstream user's workflow: materialise a corpus once, then
    evaluate detectors against it repeatedly."""
    specs = generate_study_corpus(
        tmp_path,
        participants=study_participants()[:3],
        seeds=(11,),
        duration_s=30.0,
    )
    assert len(specs) == 6

    corpus = load_manifest(tmp_path)
    radar = BlinkRadar(25.0)
    accs = []
    for spec, trace in corpus:
        result = radar.detect(trace.frames)
        accs.append(
            score_blink_detection(trace.blink_times_s, result.event_times_s).accuracy
        )
    assert np.mean(accs) >= 0.6
    # States present for every participant.
    states = {(s.participant, s.state) for s, _ in corpus}
    assert len(states) == 6

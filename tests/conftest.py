"""Shared fixtures.

Simulation is cheap but not free; session-scoped fixtures cache the traces
that many test modules share.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.physio import ParticipantProfile
from repro.sim import Scenario, simulate


@pytest.fixture(scope="session")
def lab_trace():
    """A 40 s parked, awake lab session (no posture shifts): the cleanest
    conditions, used wherever a test needs a realistic labelled capture."""
    scenario = Scenario(
        participant=ParticipantProfile("LAB"),
        duration_s=40.0,
        road="parked",
        state="awake",
        allow_posture_shifts=False,
    )
    return simulate(scenario, seed=107)


@pytest.fixture(scope="session")
def road_trace():
    """A 40 s smooth-highway, awake session with full disturbances."""
    scenario = Scenario(
        participant=ParticipantProfile("ROAD"),
        duration_s=40.0,
        road="smooth_highway",
        state="awake",
    )
    return simulate(scenario, seed=203)


@pytest.fixture(scope="session")
def drowsy_trace():
    """A 40 s parked, drowsy session (long, frequent blinks)."""
    scenario = Scenario(
        participant=ParticipantProfile("DRZ"),
        duration_s=40.0,
        road="parked",
        state="drowsy",
        allow_posture_shifts=False,
    )
    return simulate(scenario, seed=306)


@pytest.fixture()
def rng():
    """Fresh, seeded generator per test."""
    return np.random.default_rng(0)

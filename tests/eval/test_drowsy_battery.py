"""Tests for the drowsiness evaluation battery plumbing."""

import pytest

from repro.eval.runner import evaluate_drowsy_battery, with_duration
from repro.physio import ParticipantProfile
from repro.sim import Scenario


@pytest.fixture(scope="module")
def scenarios():
    participant = ParticipantProfile("BAT")
    awake = Scenario(participant=participant, state="awake", duration_s=60.0,
                     allow_posture_shifts=False)
    drowsy = Scenario(participant=participant, state="drowsy", duration_s=60.0,
                      allow_posture_shifts=False)
    return awake, drowsy


class TestBattery:
    @pytest.mark.slow
    def test_dual_features_accuracy(self, scenarios):
        awake, drowsy = scenarios
        acc = evaluate_drowsy_battery(
            awake, drowsy, train_seeds=[1, 2], test_seeds=[3, 4]
        )
        assert acc >= 0.75

    @pytest.mark.slow
    def test_rate_feature_selectable(self, scenarios):
        awake, drowsy = scenarios
        acc = evaluate_drowsy_battery(
            awake, drowsy, train_seeds=[1], test_seeds=[3], features="rate"
        )
        assert 0.0 <= acc <= 1.0

    def test_unknown_features_rejected(self, scenarios):
        awake, drowsy = scenarios
        with pytest.raises(ValueError, match="feature set"):
            evaluate_drowsy_battery(
                awake, drowsy, train_seeds=[1], test_seeds=[2], features="eeg"
            )

    def test_empty_seeds_rejected(self, scenarios):
        awake, drowsy = scenarios
        with pytest.raises(ValueError):
            evaluate_drowsy_battery(awake, drowsy, train_seeds=[], test_seeds=[1])

    def test_with_duration_helper(self, scenarios):
        awake, _ = scenarios
        longer = with_duration(awake, 120.0)
        assert longer.duration_s == 120.0
        assert longer.participant is awake.participant

"""Tests for repro.eval.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import consecutive_miss_rates, match_events, score_blink_detection


class TestMatchEvents:
    def test_perfect_match(self):
        hits, fa = match_events(np.array([1.0, 2.0]), np.array([1.05, 2.02]))
        assert hits == [True, True] and fa == 0

    def test_miss_and_false_alarm(self):
        hits, fa = match_events(np.array([1.0, 5.0]), np.array([1.0, 9.0]))
        assert hits == [True, False] and fa == 1

    def test_one_detection_cannot_match_twice(self):
        hits, fa = match_events(np.array([1.0, 1.3]), np.array([1.1]))
        assert sum(hits) == 1 and fa == 0

    def test_nearest_detection_wins(self):
        hits, fa = match_events(np.array([1.0]), np.array([0.9, 1.5]), tolerance_s=0.6)
        assert hits == [True] and fa == 1

    def test_empty_truth(self):
        hits, fa = match_events(np.array([]), np.array([1.0]))
        assert hits == [] and fa == 1

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            match_events(np.array([1.0]), np.array([1.0]), tolerance_s=0)

    @given(
        truths=st.lists(st.floats(0, 100), max_size=30),
        dets=st.lists(st.floats(0, 100), max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_conservation(self, truths, dets):
        hits, fa = match_events(np.array(truths), np.array(dets))
        assert sum(hits) + fa == len(dets)
        assert len(hits) == len(truths)


class TestScore:
    def test_paper_accuracy_definition(self):
        score = score_blink_detection(np.array([1, 3, 5.0]), np.array([1.0, 3.0]))
        assert score.accuracy == pytest.approx(2 / 3)
        assert score.recall == score.accuracy

    def test_precision_and_f1(self):
        score = score_blink_detection(np.array([1.0, 3.0]), np.array([1.0, 8.0]))
        assert score.precision == pytest.approx(0.5)
        assert score.f1 == pytest.approx(0.5)

    def test_empty_truth_is_perfect_recall(self):
        score = score_blink_detection(np.array([]), np.array([]))
        assert score.accuracy == 1.0 and score.precision == 1.0


class TestConsecutiveMissRates:
    def test_paper_style_runs(self):
        # Among 10 true blinks: one isolated miss (index 1) and one double
        # miss (indices 3–4) → runs of ≥1: 2/10, ≥2: 1/10, ≥3: 0.
        masks = [(True, False, True, False, False, True, True, True, True, True)]
        rates = consecutive_miss_rates(masks)
        assert rates.tolist() == pytest.approx([2 / 10, 1 / 10, 0.0])

    def test_all_hits(self):
        rates = consecutive_miss_rates([(True,) * 20])
        assert rates.tolist() == [0.0, 0.0, 0.0]

    def test_rates_monotone_decreasing(self):
        rng = np.random.default_rng(0)
        masks = [tuple(rng.random(50) > 0.1) for _ in range(10)]
        rates = consecutive_miss_rates(masks)
        assert rates[0] >= rates[1] >= rates[2]

    def test_run_at_sequence_start(self):
        rates = consecutive_miss_rates([(False, False, True)])
        assert rates.tolist() == pytest.approx([1 / 3, 1 / 3, 0.0])

    def test_multiple_sessions_pooled(self):
        rates = consecutive_miss_rates([(False, True), (True, True)])
        assert rates[0] == pytest.approx(1 / 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            consecutive_miss_rates([])
        with pytest.raises(ValueError):
            consecutive_miss_rates([(True,)], max_run=0)

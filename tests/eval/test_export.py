"""Tests for repro.eval.export."""

import numpy as np
import pytest

from repro.eval.export import export_cdf, export_series, load_series


class TestSeriesRoundtrip:
    @pytest.mark.parametrize("suffix", [".csv", ".json"])
    def test_numeric_keys(self, tmp_path, suffix):
        series = {0.2: 0.96, 0.4: 0.95, 0.8: 0.91}
        path = export_series(tmp_path / f"s{suffix}", series)
        assert load_series(path) == pytest.approx(series)

    @pytest.mark.parametrize("suffix", [".csv", ".json"])
    def test_string_keys(self, tmp_path, suffix):
        series = {"none": 0.95, "myopia": 0.94, "sunglasses": 0.93}
        path = export_series(tmp_path / f"s{suffix}", series)
        assert load_series(path) == pytest.approx(series)

    def test_integer_keys_preserved(self, tmp_path):
        series = {1: 0.93, 2: 0.9, 3: 0.88, 4: 0.85}
        loaded = load_series(export_series(tmp_path / "g.csv", series))
        assert set(loaded) == {1, 2, 3, 4}

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_series(tmp_path / "s.xlsx", {1: 2.0})
        with pytest.raises(ValueError):
            load_series(tmp_path / "s.parquet")

    def test_labels_in_csv_header(self, tmp_path):
        path = export_series(tmp_path / "s.csv", {1: 2.0},
                             x_label="distance_m", y_label="accuracy")
        assert path.read_text().splitlines()[0] == "distance_m,accuracy"


class TestCdfExport:
    def test_cdf_points(self, tmp_path):
        samples = np.array([0.9, 0.8, 1.0])
        loaded = load_series(export_cdf(tmp_path / "cdf.csv", samples))
        assert loaded[0.8] == pytest.approx(1 / 3)
        assert loaded[1.0] == pytest.approx(1.0)

"""Additional sweep coverage: glasses, road groups, eye size."""

import pytest

from repro.datasets import EYE_SIZE_LEVELS
from repro.eval.sweeps import eye_size_sweep, glasses_sweep, road_group_sweep
from repro.physio import ParticipantProfile
from repro.sim import Scenario


@pytest.fixture(scope="module")
def base():
    return Scenario(
        participant=ParticipantProfile("SWP"),
        duration_s=30.0,
        allow_posture_shifts=False,
    )


@pytest.mark.slow
class TestFactorSweeps:
    def test_glasses_sweep_keys(self, base):
        results = glasses_sweep(base, seeds=[1], kinds=("none", "sunglasses"))
        assert list(results) == ["none", "sunglasses"]
        assert all(0.0 <= v <= 1.0 for v in results.values())

    def test_road_group_sweep_pools_roads(self, base):
        results = road_group_sweep(base, seeds=[1], groups={1: ["smooth_highway"],
                                                            4: ["bumpy"]})
        assert set(results) == {1, 4}

    def test_eye_size_sweep_levels(self, base):
        two = {k: EYE_SIZE_LEVELS[k] for k in ("S1", "S6")}
        results = eye_size_sweep(base, seeds=[1], sizes=two)
        assert list(results) == ["S1", "S6"]

    def test_unknown_road_in_group_raises(self, base):
        with pytest.raises(KeyError):
            road_group_sweep(base, seeds=[1], groups={1: ["autobahn"]})

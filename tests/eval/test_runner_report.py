"""Tests for repro.eval.runner, sweeps and report."""

import numpy as np
import pytest

from repro.eval.report import format_cdf_summary, format_series, format_table
from repro.eval.runner import run_session, session_accuracies
from repro.eval.sweeps import distance_sweep, sweep_scenarios
from repro.physio import ParticipantProfile
from repro.sim import Scenario


@pytest.fixture(scope="module")
def base_scenario():
    return Scenario(
        participant=ParticipantProfile("EVAL"),
        duration_s=30.0,
        allow_posture_shifts=False,
    )


class TestRunSession:
    def test_session_result_fields(self, base_scenario):
        result = run_session(base_scenario, seed=1)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.trace.n_frames == base_scenario.n_frames
        assert result.detection.n_frames == base_scenario.n_frames

    def test_reasonable_accuracy(self, base_scenario):
        result = run_session(base_scenario, seed=1)
        assert result.accuracy >= 0.6

    def test_session_accuracies_cross_product(self, base_scenario):
        results = session_accuracies([base_scenario], [1, 2])
        assert len(results) == 2

    def test_empty_inputs_rejected(self, base_scenario):
        with pytest.raises(ValueError):
            session_accuracies([], [1])
        with pytest.raises(ValueError):
            session_accuracies([base_scenario], [])


class TestSweeps:
    def test_sweep_preserves_order(self, base_scenario):
        results = sweep_scenarios(
            base_scenario,
            {"a": lambda s: s, "b": lambda s: s},
            seeds=[1],
        )
        assert list(results) == ["a", "b"]

    def test_distance_sweep_keys(self, base_scenario):
        results = distance_sweep(base_scenario, seeds=[1], distances_m=(0.4,))
        assert list(results) == [0.4]
        assert 0 <= results[0.4] <= 1.0

    def test_sweep_needs_seeds(self, base_scenario):
        with pytest.raises(ValueError):
            sweep_scenarios(base_scenario, {"a": lambda s: s}, seeds=[])


class TestReport:
    def test_format_table(self):
        text = format_table("T", ["a", "b"], [[1, 2.5], ["x", 0.123456]])
        assert "T" in text and "0.123" in text
        assert text.count("\n") >= 4

    def test_format_series(self):
        text = format_series("S", {0.2: 0.96, 0.4: 0.95}, unit="accuracy")
        assert "0.960" in text and "accuracy" in text

    def test_format_cdf_summary(self):
        text = format_cdf_summary("CDF", np.linspace(0.8, 1.0, 21))
        assert "median" in text and "0.900" in text

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            format_table("T", ["a"], [])
        with pytest.raises(ValueError):
            format_cdf_summary("C", np.array([]))

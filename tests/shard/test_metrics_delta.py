"""Cross-process metrics: journaling registry and delta replay.

The contract that makes the parent's Prometheus rendering span every
shard process: workers journal raw mutations (histogram *observations*,
not summaries), ship them as deltas, and the parent replays them — so
the aggregate is exactly what one in-process registry would have seen.
"""

from __future__ import annotations

from repro.fleet.metrics import MetricsRegistry
from repro.shard.messages import MetricsDelta
from repro.shard.metrics import JournalingRegistry, apply_delta


class TestJournalingRegistry:
    def test_instruments_behave_like_the_fleet_ones(self):
        registry = JournalingRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        assert registry.counter("c").value == 3
        assert registry.gauge("g").value == 1.5
        assert registry.histogram("h").snapshot()["count"] == 1

    def test_drain_delta_captures_and_clears(self):
        registry = JournalingRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.0)
        registry.gauge("g").add(0.5)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        delta = registry.drain_delta()
        assert delta.counters == {"c": 5}
        assert delta.gauges == {"g": 2.5}
        assert delta.observations == {"h": [1.0, 3.0]}
        # Drained: the next delta is empty until new mutations land.
        assert not registry.drain_delta()
        registry.counter("c").inc()
        assert registry.drain_delta().counters == {"c": 1}

    def test_same_instrument_returned_across_lookups(self):
        registry = JournalingRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")


class TestApplyDelta:
    def test_replay_matches_in_process_recording(self):
        worker = JournalingRegistry()
        parent = MetricsRegistry()
        reference = MetricsRegistry()
        for value in (0.1, 0.2, 0.9, 0.4):
            worker.histogram("fleet.latency_s").observe(value)
            reference.histogram("fleet.latency_s").observe(value)
        worker.counter("fleet.blinks").inc(2)
        reference.counter("fleet.blinks").inc(2)
        apply_delta(parent, worker.drain_delta())
        assert (
            parent.counter("fleet.blinks").value
            == reference.counter("fleet.blinks").value
        )
        # Observations (not summaries) crossed: percentiles agree exactly.
        assert parent.histogram("fleet.latency_s").percentile(
            95.0
        ) == reference.histogram("fleet.latency_s").percentile(95.0)

    def test_deltas_from_two_workers_accumulate(self):
        parent = MetricsRegistry()
        a, b = JournalingRegistry(), JournalingRegistry()
        a.counter("fleet.frames_processed").inc(10)
        b.counter("fleet.frames_processed").inc(32)
        a.gauge("session.s0.queue_depth").set(4)
        apply_delta(parent, a.drain_delta())
        apply_delta(parent, b.drain_delta())
        assert parent.counter("fleet.frames_processed").value == 42
        assert parent.gauge("session.s0.queue_depth").value == 4

    def test_empty_delta_is_falsy_and_inert(self):
        parent = MetricsRegistry()
        delta = MetricsDelta()
        assert not delta
        apply_delta(parent, delta)
        assert parent.as_dict()["counters"] == {}

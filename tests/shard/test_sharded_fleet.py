"""ShardedFleet: serve-surface parity, bit-identity, backpressure.

The sharded backend must be a drop-in for the threaded scheduler's
serve mode: same call surface, same error contract, same accounting —
and, the tentpole acceptance bar, *bit-identical* blink events on the
same frames, because the workers run the exact same detector code over
the exact same bytes (the ring's checksummed ``.rst`` chunk framing).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.fleet.events import FrameDropEvent
from repro.fleet.metrics import MetricsRegistry
from repro.fleet.scheduler import FleetScheduler
from repro.gateway.ingest import IngestSession
from repro.shard.fleet import ShardedFleet

_N_BINS = 32
_FPS = 25.0


def _session(session_id: str, metrics=None, n_bins: int = _N_BINS) -> IngestSession:
    session = IngestSession(
        session_id, n_bins=n_bins, frame_rate_hz=_FPS, metrics=metrics
    )
    session.start()
    return session


def _frames(session: IngestSession, count: int, seed: int = 5):
    rng = np.random.default_rng(seed)
    for k in range(count):
        frame = (
            rng.standard_normal(session.n_bins)
            + 1j * rng.standard_normal(session.n_bins)
        ).astype(np.complex64)
        yield session.make_item(k / _FPS, frame)


def _wait_idle(fleet, timeout_s: float = 60.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not fleet.idle():
        assert time.monotonic() < deadline, "sharded fleet never drained"
        time.sleep(0.005)


@pytest.fixture(scope="module")
def fleet():
    """One warm 2-shard fleet shared by the surface tests (worker
    start-up costs seconds; the tests attach/detach their own sessions)."""
    fleet = ShardedFleet([], workers=2, queue_depth=1024, slot_bins=256)
    fleet.start()
    yield fleet
    fleet.stop()


class TestServeSurfaceParity:
    def test_submit_processes_through_worker_processes(self, fleet):
        session = _session("p0", fleet.metrics)
        fleet.attach(session)
        try:
            for item in _frames(session, 40):
                assert fleet.submit("p0", item)
            _wait_idle(fleet)
            assert session.frames_processed == 40
        finally:
            assert fleet.detach("p0") == 0
            session.close()

    def test_duplicate_attach_raises_value_error(self, fleet):
        session = _session("p1")
        fleet.attach(session)
        try:
            other = _session("p1")
            with pytest.raises(ValueError, match="duplicate"):
                fleet.attach(other)
            other.close()
        finally:
            fleet.detach("p1")
            session.close()

    def test_unknown_session_raises_key_error(self, fleet):
        with pytest.raises(KeyError):
            fleet.submit("ghost", (1, 0.0, np.zeros(_N_BINS, np.complex64)))
        with pytest.raises(KeyError):
            fleet.drained("ghost")
        with pytest.raises(KeyError):
            fleet.detach("ghost")

    def test_oversized_session_rejected_at_attach(self, fleet):
        session = _session("wide", n_bins=512)
        with pytest.raises(ValueError, match="bins"):
            fleet.attach(session)
        session.close()

    def test_sessions_spread_across_shards(self, fleet):
        sessions = [_session(f"spread{i}") for i in range(4)]
        for session in sessions:
            fleet.attach(session)
        try:
            homes = fleet.shards()
            assert sorted(len(v) for v in homes.values()) == [2, 2]
        finally:
            for session in sessions:
                fleet.detach(session.session_id)
                session.close()

    def test_detach_flushes_results_before_returning(self, fleet):
        session = _session("flush0")
        fleet.attach(session)
        for item in _frames(session, 30):
            fleet.submit("flush0", item)
        # No explicit drain wait: detach itself must drain the ring and
        # apply every result before it returns.
        assert fleet.detach("flush0") == 0
        assert session.frames_processed == 30
        session.close()

    def test_queue_depths_and_dropped_inspection(self, fleet):
        session = _session("q0")
        fleet.attach(session)
        try:
            _wait_idle(fleet)
            assert fleet.queue_depths()["q0"] == 0
            assert fleet.dropped()["q0"] == 0
        finally:
            fleet.detach("q0")
            session.close()

    def test_double_start_raises(self, fleet):
        with pytest.raises(RuntimeError):
            fleet.start()

    def test_attach_before_start_raises(self):
        cold = ShardedFleet([], workers=1, slot_bins=_N_BINS)
        session = _session("cold0")
        with pytest.raises(RuntimeError):
            cold.attach(session)
        session.close()


class TestBackpressure:
    def test_ring_full_sheds_newest_with_conservation(self, fleet):
        # A 1024-slot ring won't fill against live workers; build a tiny
        # dedicated fleet whose ring holds 2 frames.
        tiny = ShardedFleet([], workers=1, queue_depth=2, slot_bins=_N_BINS)
        tiny.start()
        session = _session("bp0", tiny.metrics)
        tiny.attach(session)
        try:
            submitted, accepted = 0, 0
            for item in _frames(session, 400):
                submitted += 1
                if tiny.submit("bp0", item):
                    accepted += 1
            _wait_idle(tiny)
            dropped = tiny.dropped()["bp0"]
            # Conservation: every submitted frame either processed or
            # counted (and evented) as shed — none vanish.
            assert accepted + dropped == submitted
            assert session.frames_processed == accepted
            assert dropped > 0, "2-slot ring never filled: smoke misconfigured"
            queue_drops = [
                e
                for e in session.events
                if isinstance(e, FrameDropEvent) and e.where == "queue"
            ]
            assert sum(e.n_dropped for e in queue_drops) == dropped
            assert tiny.metrics.counter("session.bp0.dropped_queue").value == dropped
        finally:
            tiny.detach("bp0")
            tiny.stop()
            session.close()


class TestBitIdentity:
    @pytest.mark.parametrize("trace_name", ["lab_trace", "drowsy_trace"])
    def test_blink_events_identical_to_threaded(self, fleet, trace_name, request):
        """The acceptance gate: same frames, same events, bit for bit.

        Golden realisations (seeded simulations, the same traces the
        scalar-path goldens were captured from) stream through both
        backends; every blink's frame index, apex time and prominence
        must match exactly.
        """
        trace = request.getfixturevalue(trace_name)
        frames = trace.frames[:500]

        def run_threaded():
            metrics = MetricsRegistry()
            scheduler = FleetScheduler([], workers=2, metrics=metrics)
            scheduler.start()
            session = _session("golden", metrics, n_bins=trace.n_bins)
            scheduler.attach(session)
            for k in range(len(frames)):
                assert scheduler.submit(
                    "golden", session.make_item(k / trace.frame_rate_hz, frames[k])
                )
            deadline = time.monotonic() + 60
            while not scheduler.drained("golden"):
                assert time.monotonic() < deadline
                time.sleep(0.005)
            scheduler.detach("golden")
            scheduler.stop()
            # Snapshot *after* close: close() flushes the detector's
            # pending blink, which sharded detach performs worker-side.
            session.close()
            return list(session.blink_events)

        def run_sharded():
            session = _session("golden", fleet.metrics, n_bins=trace.n_bins)
            fleet.attach(session)
            for k in range(len(frames)):
                assert fleet.submit(
                    "golden", session.make_item(k / trace.frame_rate_hz, frames[k])
                )
            _wait_idle(fleet)
            fleet.detach("golden")
            events = list(session.blink_events)
            session.close()
            return events

        threaded = run_threaded()
        sharded = run_sharded()
        assert [(e.frame_index, e.time_s, e.prominence) for e in sharded] == [
            (e.frame_index, e.time_s, e.prominence) for e in threaded
        ]
        assert len(threaded) > 0, "trace produced no blinks: gate is vacuous"

"""ShmRing: slot framing, SPSC counters, backpressure, integrity.

Pure in-process tests — both ends of the ring are exercised from one
process, which is legal (the SPSC contract is about *roles*, one
producer and one consumer, not about process count).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard.ring import (
    DTYPE_CODES,
    RingFrame,
    ShmRing,
    encode_slot,
    slot_bytes_for,
)
from repro.store.format import StoreIntegrityError


def _frame(n_bins: int = 8, dtype=np.complex128) -> np.ndarray:
    return (np.arange(n_bins) + 1j * np.arange(n_bins)).astype(dtype)


@pytest.fixture()
def ring():
    ring = ShmRing.create(4, slot_bytes_for(8))
    yield ring
    ring.close()
    ring.unlink()


class TestSlotCodec:
    def test_roundtrip_preserves_route_and_payload(self, ring):
        frame = _frame()
        assert ring.push(encode_slot(7, 3, 0.25, 12.5, frame))
        [rf] = ring.peek(1)
        assert isinstance(rf, RingFrame)
        assert rf.session_index == 7
        assert rf.generation == 3
        assert rf.enqueued_at == 0.25
        assert rf.timestamp_s == 12.5
        np.testing.assert_array_equal(rf.frame, frame)
        assert rf.frame.dtype == np.complex128
        del rf
        ring.advance(1)

    def test_complex64_roundtrip(self, ring):
        frame = _frame(dtype=np.complex64)
        assert ring.push(encode_slot(0, 1, 0.0, 0.0, frame))
        [rf] = ring.peek(1)
        assert rf.frame.dtype == np.complex64
        np.testing.assert_array_equal(rf.frame, frame)
        del rf
        ring.advance(1)

    def test_peek_is_zero_copy_view_into_shared_memory(self, ring):
        assert ring.push(encode_slot(0, 1, 0.0, 0.0, _frame()))
        [rf] = ring.peek(1)
        # A view, not a copy: the frame's buffer is the shm mapping.
        assert not rf.frame.flags["OWNDATA"]
        del rf
        ring.advance(1)

    def test_oversized_frame_rejected(self, ring):
        with pytest.raises(ValueError):
            ring.push(encode_slot(0, 1, 0.0, 0.0, _frame(n_bins=64)))

    def test_dtype_codes_cover_pipeline_dtypes(self):
        assert set(DTYPE_CODES) == {"complex64", "complex128"}


class TestBackpressure:
    def test_full_ring_drops_newest_and_counts(self, ring):
        slot = encode_slot(0, 1, 0.0, 0.0, _frame())
        results = [ring.push(slot) for _ in range(7)]
        assert results == [True] * 4 + [False] * 3
        assert ring.drops == 3
        assert ring.size == 4

    def test_conservation_submitted_equals_published_plus_drops(self, ring):
        slot = encode_slot(0, 1, 0.0, 0.0, _frame())
        submitted = 50
        published = sum(1 for _ in range(submitted) if ring.push(slot))
        assert published + ring.drops == submitted

    def test_advance_frees_slots_for_reuse(self, ring):
        slot = encode_slot(0, 1, 0.0, 0.0, _frame())
        for _ in range(4):
            assert ring.push(slot)
        assert not ring.push(slot)
        frames = ring.peek(2)
        assert len(frames) == 2
        del frames
        ring.advance(2)
        assert ring.push(slot)
        assert ring.push(slot)
        assert not ring.push(slot)

    def test_peek_bounded_by_max_items(self, ring):
        slot = encode_slot(0, 1, 0.0, 0.0, _frame())
        for _ in range(4):
            ring.push(slot)
        frames = ring.peek(3)
        assert len(frames) == 3
        del frames


class TestIntegrity:
    def test_corrupted_payload_raises(self, ring):
        assert ring.push(encode_slot(0, 1, 0.0, 0.0, _frame()))
        # Flip one payload byte behind the ring's back: the slot's CRC
        # (the .rst chunk framing) must catch it on peek.
        from repro.shard import ring as ring_mod

        offset = ring_mod._SLOTS_OFF + ring_mod._PAYLOAD_OFF + 11
        ring._shm.buf[offset] ^= 0xFF
        with pytest.raises(StoreIntegrityError):
            ring.peek(1)

    def test_cross_process_attach_sees_same_slots(self, ring):
        frame = _frame()
        assert ring.push(encode_slot(5, 2, 1.0, 2.0, frame))
        other = ShmRing.attach(ring.name)
        try:
            [rf] = other.peek(1)
            assert rf.session_index == 5
            np.testing.assert_array_equal(rf.frame, frame)
            del rf
        finally:
            other.close()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        from repro.store.format import StoreFormatError

        shm = shared_memory.SharedMemory(create=True, size=1024)
        try:
            with pytest.raises(StoreFormatError):
                ShmRing.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()


class TestGeometry:
    def test_slot_bytes_payload_is_eight_aligned(self):
        for n_bins in (1, 7, 16, 234, 256):
            assert slot_bytes_for(n_bins) % 8 == 0

    def test_context_manager_closes_and_unlinks(self):
        with ShmRing.create(2, slot_bytes_for(4)) as ring:
            name = ring.name
            attached = ShmRing.attach(name)
            attached.close()
        # The owning context exit unlinked the segment: gone for good.
        with pytest.raises(FileNotFoundError):
            ShmRing.attach(name)

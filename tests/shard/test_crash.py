"""Shard fault paths: SIGKILL a worker mid-stream.

The loss contract under crash: a killed worker costs precisely its own
ring's in-flight slots — counted, evented (``where="crash"``), and
charged to the dead shard's sessions only. Sessions on other shards
lose nothing, the parent never deadlocks (``drained`` resolves), the
dead shard's sessions are re-homed onto a fresh worker and keep
processing, and ``detach`` still returns for every session afterwards.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.fleet.events import FrameDropEvent
from repro.gateway.ingest import IngestSession
from repro.shard.fleet import ShardedFleet

_N_BINS = 32
_FPS = 25.0
_N_FRAMES = 500


def _crash_lost(session: IngestSession) -> int:
    return sum(
        e.n_dropped
        for e in session.events
        if isinstance(e, FrameDropEvent) and e.where == "crash"
    )


@pytest.fixture(scope="module")
def crashed():
    """Stream 4 sessions over 2 shards, SIGKILL one shard mid-stream,
    drain, and hand the post-mortem state to the assertions."""
    rng = np.random.default_rng(13)
    sids = [f"c{i}" for i in range(4)]
    traces = {
        sid: (
            rng.standard_normal((_N_FRAMES, _N_BINS))
            + 1j * rng.standard_normal((_N_FRAMES, _N_BINS))
        ).astype(np.complex64)
        for sid in sids
    }
    sessions = {
        sid: IngestSession(sid, n_bins=_N_BINS, frame_rate_hz=_FPS) for sid in sids
    }
    fleet = ShardedFleet([], workers=2, queue_depth=4096, slot_bins=_N_BINS)
    fleet.start()
    for session in sessions.values():
        session.start()
        fleet.attach(session)
    victim = fleet._pool[0]
    victim_sids = sorted(sid for sid, w in fleet._assign.items() if w is victim)
    accepted = {sid: 0 for sid in sids}
    for k in range(_N_FRAMES):
        if k == _N_FRAMES // 3:
            os.kill(victim.process.pid, signal.SIGKILL)
        for sid, session in sessions.items():
            if fleet.submit(sid, session.make_item(k / _FPS, traces[sid][k])):
                accepted[sid] += 1
    deadline = time.monotonic() + 120.0
    while not fleet.idle():
        assert time.monotonic() < deadline, "fleet deadlocked after worker crash"
        time.sleep(0.01)
    yield {
        "fleet": fleet,
        "sessions": sessions,
        "accepted": accepted,
        "victim_sids": victim_sids,
    }
    for sid in sids:
        try:
            fleet.detach(sid)
        except KeyError:
            pass
    fleet.stop()
    for session in sessions.values():
        session.close()


class TestCrashRecovery:
    def test_exactly_one_crash_counted(self, crashed):
        assert crashed["fleet"].metrics.counter("fleet.shard_crashes").value == 1

    def test_victim_shard_homed_sessions(self, crashed):
        # The kill must actually have hit loaded shards, or every other
        # assertion here is vacuous.
        assert len(crashed["victim_sids"]) == 2

    def test_survivor_sessions_lose_nothing(self, crashed):
        for sid, session in crashed["sessions"].items():
            if sid in crashed["victim_sids"]:
                continue
            assert _crash_lost(session) == 0
            assert session.frames_processed == crashed["accepted"][sid]

    def test_loss_bounded_to_dead_shards_in_flight(self, crashed):
        for sid in crashed["victim_sids"]:
            session = crashed["sessions"][sid]
            lost = _crash_lost(session)
            assert lost > 0, "no in-flight frames at kill: smoke misconfigured"
            assert session.frames_processed + lost == crashed["accepted"][sid]

    def test_rehomed_sessions_resume_processing(self, crashed):
        fleet = crashed["fleet"]
        live_shards = {w.shard_index for w in fleet._pool}
        homes = fleet.shards()
        for sid in crashed["victim_sids"]:
            home = next(idx for idx, sids in homes.items() if sid in sids)
            assert home in live_shards
            # Processed frames after re-home: the replacement does work.
            assert crashed["sessions"][sid].frames_processed > 0

    def test_fleet_loss_counter_matches_events(self, crashed):
        total = sum(_crash_lost(s) for s in crashed["sessions"].values())
        assert crashed["fleet"].metrics.counter("fleet.dropped_crash").value == total

    def test_drained_reports_true_for_all_sessions(self, crashed):
        fleet = crashed["fleet"]
        for sid in crashed["sessions"]:
            assert fleet.drained(sid)

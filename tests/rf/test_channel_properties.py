"""Property-based tests of the channel physics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rf.channel import MultipathChannel, PropagationPath, radar_equation_amplitude
from repro.rf.config import RadarConfig
from repro.rf.constants import phase_change

CFG = RadarConfig()


class TestChannelProperties:
    @given(
        range_m=st.floats(0.1, 1.2),
        amp=st.floats(1e-6, 1e-3),
    )
    @settings(max_examples=30, deadline=None)
    def test_peak_bin_tracks_range(self, range_m, amp):
        ch = MultipathChannel(CFG, [PropagationPath("t", range_m, amp)])
        frame = ch.baseband_frames(n_frames=1)[0]
        assert abs(int(np.argmax(np.abs(frame))) - CFG.range_to_bin(range_m)) <= 1

    @given(
        displacement_mm=st.floats(-3.0, 3.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_phase_modulation_linear_in_displacement(self, displacement_mm):
        d = displacement_mm * 1e-3
        ch = MultipathChannel(
            CFG, [PropagationPath("t", 0.5, 1e-4, displacement_m=np.array([0.0, d]))]
        )
        frames = ch.baseband_frames()
        b = CFG.range_to_bin(0.5)
        measured = np.angle(frames[1, b] / frames[0, b])
        expected = phase_change(CFG.carrier_hz, d)
        # Compare on the circle (±π wrap).
        delta = np.angle(np.exp(1j * (measured - expected)))
        assert abs(delta) < 0.02

    @given(scale=st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_linearity_in_amplitude(self, scale):
        p = PropagationPath("t", 0.4, 1e-4)
        base = MultipathChannel(CFG, [p]).baseband_frames(n_frames=1)[0]
        scaled_path = PropagationPath("t", 0.4, 1e-4 * scale)
        scaled = MultipathChannel(CFG, [scaled_path]).baseband_frames(n_frames=1)[0]
        assert np.allclose(scaled, base * scale, rtol=1e-9)

    @given(
        r1=st.floats(0.15, 1.2),
        r2=st.floats(0.15, 1.2),
        a1=st.floats(1e-5, 1e-3),
        a2=st.floats(1e-5, 1e-3),
    )
    @settings(max_examples=30, deadline=None)
    def test_superposition_any_two_paths(self, r1, r2, a1, a2):
        pa, pb = PropagationPath("a", r1, a1), PropagationPath("b", r2, a2)
        both = MultipathChannel(CFG, [pa, pb]).baseband_frames(n_frames=1)[0]
        one = MultipathChannel(CFG, [pa]).baseband_frames(n_frames=1)[0]
        two = MultipathChannel(CFG, [pb]).baseband_frames(n_frames=1)[0]
        assert np.allclose(both, one + two, rtol=1e-12, atol=1e-18)


class TestRadarEquationProperties:
    @given(
        r=st.floats(0.1, 2.0),
        k=st.floats(1.1, 4.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_range(self, r, k):
        near = radar_equation_amplitude(1.0, 7.3e9, r, 1e-4)
        far = radar_equation_amplitude(1.0, 7.3e9, r * k, 1e-4)
        assert near > far
        assert near / far == pytest.approx(k**2, rel=1e-9)

    @given(f=st.floats(1e9, 60e9))
    @settings(max_examples=20, deadline=None)
    def test_amplitude_scales_with_wavelength(self, f):
        a = radar_equation_amplitude(1.0, f, 0.4, 1e-4)
        b = radar_equation_amplitude(1.0, 2 * f, 0.4, 1e-4)
        assert a / b == pytest.approx(2.0, rel=1e-9)

"""Tests for repro.rf.pulse (paper Eq. 1–3, Fig. 5)."""

import numpy as np
import pytest

from repro.rf.pulse import GaussianPulse, bandwidth_from_sigma, sigma_from_bandwidth


class TestSigmaBandwidth:
    def test_paper_values(self):
        # B = 1.4 GHz → σ ≈ 0.345 ns.
        assert sigma_from_bandwidth(1.4e9) == pytest.approx(0.345e-9, rel=0.01)

    def test_roundtrip(self):
        for bw in (0.5e9, 1.4e9, 2.0e9):
            assert bandwidth_from_sigma(sigma_from_bandwidth(bw)) == pytest.approx(bw)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sigma_from_bandwidth(0.0)
        with pytest.raises(ValueError):
            bandwidth_from_sigma(-1.0)


class TestGaussianPulse:
    def test_envelope_peak_at_center(self):
        p = GaussianPulse()
        t = np.linspace(0, p.duration_s, 1001)
        env = p.envelope(t)
        assert t[np.argmax(env)] == pytest.approx(p.duration_s / 2, rel=1e-3)
        assert env.max() == pytest.approx(p.amplitude)

    def test_envelope_negligible_at_edges(self):
        p = GaussianPulse()
        assert p.envelope(np.array([0.0]))[0] < 1e-3 * p.amplitude

    def test_measured_bandwidth_matches_design(self):
        p = GaussianPulse(carrier_hz=7.3e9, bandwidth_hz=1.4e9)
        measured = p.measured_bandwidth_10db(60e9)
        assert measured == pytest.approx(1.4e9, rel=0.02)

    def test_spectrum_centred_on_carrier(self):
        p = GaussianPulse()
        freqs, amp = p.spectrum(60e9)
        assert freqs[np.argmax(amp)] == pytest.approx(7.3e9, rel=0.02)

    def test_waveform_nyquist_enforced(self):
        p = GaussianPulse()
        with pytest.raises(ValueError):
            p.waveform(10e9)  # far below 2*(7.3+0.7) GHz

    def test_waveform_amplitude_bounded(self):
        p = GaussianPulse(amplitude=2.0)
        _, x = p.waveform(60e9)
        assert np.abs(x).max() <= 2.0 + 1e-9

    def test_envelope_centered_symmetry(self):
        p = GaussianPulse()
        t = np.linspace(-1e-9, 1e-9, 201)
        env = p.envelope_centered(t)
        assert np.allclose(env, env[::-1])

    @pytest.mark.parametrize("kwargs", [
        {"carrier_hz": 0}, {"bandwidth_hz": -1}, {"amplitude": 0}, {"duration_sigmas": 0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            GaussianPulse(**kwargs)

    def test_duration_scales_with_sigmas(self):
        short = GaussianPulse(duration_sigmas=4.0)
        long = GaussianPulse(duration_sigmas=8.0)
        assert long.duration_s == pytest.approx(2 * short.duration_s)

"""Tests for repro.rf.channel."""

import numpy as np
import pytest

from repro.rf.channel import MultipathChannel, PropagationPath, radar_equation_amplitude
from repro.rf.config import RadarConfig
from repro.rf.constants import SPEED_OF_LIGHT, phase_change


@pytest.fixture()
def cfg():
    return RadarConfig()


class TestRadarEquation:
    def test_inverse_square_amplitude(self):
        a1 = radar_equation_amplitude(1.0, 7.3e9, 0.4, 1e-4)
        a2 = radar_equation_amplitude(1.0, 7.3e9, 0.8, 1e-4)
        assert a1 / a2 == pytest.approx(4.0)

    def test_sqrt_rcs_scaling(self):
        a1 = radar_equation_amplitude(1.0, 7.3e9, 0.4, 1e-4)
        a4 = radar_equation_amplitude(1.0, 7.3e9, 0.4, 4e-4)
        assert a4 / a1 == pytest.approx(2.0)

    def test_reflectivity_linear(self):
        a = radar_equation_amplitude(1.0, 7.3e9, 0.4, 1e-4, reflectivity=0.5)
        b = radar_equation_amplitude(1.0, 7.3e9, 0.4, 1e-4, reflectivity=1.0)
        assert a / b == pytest.approx(0.5)

    def test_gain_enters_as_sqrt(self):
        a = radar_equation_amplitude(1.0, 7.3e9, 0.4, 1e-4, two_way_gain=0.25)
        b = radar_equation_amplitude(1.0, 7.3e9, 0.4, 1e-4)
        assert a / b == pytest.approx(0.5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            radar_equation_amplitude(1.0, 7.3e9, 0.0, 1e-4)
        with pytest.raises(ValueError):
            radar_equation_amplitude(1.0, 7.3e9, 0.4, -1.0)


class TestPropagationPath:
    def test_static_path(self):
        p = PropagationPath("seat", 1.0, 1e-4)
        assert p.is_static() and p.n_frames() is None

    def test_track_length(self):
        p = PropagationPath("eye", 0.4, 1e-4, displacement_m=np.zeros(100))
        assert p.n_frames() == 100 and not p.is_static()

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            PropagationPath("x", -0.1, 1e-4)
        with pytest.raises(ValueError):
            PropagationPath("x", 0.4, -1e-4)
        with pytest.raises(ValueError):
            PropagationPath("x", 0.4, 1e-4, amplitude_scale=np.array([-0.1]))


class TestMultipathChannel:
    def test_envelope_peaks_at_path_range(self, cfg):
        ch = MultipathChannel(cfg, [PropagationPath("t", 0.4, 1e-4)])
        frame = ch.baseband_frames(n_frames=1)[0]
        assert np.argmax(np.abs(frame)) == cfg.range_to_bin(0.4)

    def test_phase_matches_eq9(self, cfg):
        # Displace the target by Δd: the peak bin's phase rotates by
        # −4π f0 Δd / c.
        dd = 0.7e-3
        ch = MultipathChannel(
            cfg, [PropagationPath("t", 0.4, 1e-4, displacement_m=np.array([0.0, dd]))]
        )
        frames = ch.baseband_frames()
        b = cfg.range_to_bin(0.4)
        measured = np.angle(frames[1, b] / frames[0, b])
        assert measured == pytest.approx(phase_change(cfg.carrier_hz, dd), rel=1e-3)

    def test_superposition(self, cfg):
        p1 = PropagationPath("a", 0.3, 1e-4)
        p2 = PropagationPath("b", 0.9, 2e-4)
        both = MultipathChannel(cfg, [p1, p2]).baseband_frames(n_frames=1)[0]
        only1 = MultipathChannel(cfg, [p1]).baseband_frames(n_frames=1)[0]
        only2 = MultipathChannel(cfg, [p2]).baseband_frames(n_frames=1)[0]
        assert np.allclose(both, only1 + only2)

    def test_amplitude_scale_modulates(self, cfg):
        scale = np.array([1.0, 0.5])
        ch = MultipathChannel(
            cfg, [PropagationPath("t", 0.4, 1e-4, amplitude_scale=scale)]
        )
        frames = ch.baseband_frames()
        b = cfg.range_to_bin(0.4)
        assert abs(frames[1, b]) == pytest.approx(0.5 * abs(frames[0, b]))

    def test_noise_added_only_with_rng(self, cfg):
        ch = MultipathChannel(cfg, [PropagationPath("t", 0.4, 1e-4)])
        clean = ch.baseband_frames(n_frames=2)
        assert np.allclose(clean[0], clean[1])
        noisy = ch.baseband_frames(n_frames=2, rng=np.random.default_rng(0))
        assert not np.allclose(noisy[0], noisy[1])

    def test_noise_level(self, cfg):
        ch = MultipathChannel(cfg, [PropagationPath("t", 0.4, 0.0)])
        frames = ch.baseband_frames(n_frames=200, rng=np.random.default_rng(1))
        assert np.std(frames.real) == pytest.approx(cfg.noise_sigma, rel=0.05)

    def test_infer_n_frames(self, cfg):
        ch = MultipathChannel(
            cfg, [PropagationPath("t", 0.4, 1e-4, displacement_m=np.zeros(7))]
        )
        assert ch.infer_n_frames() == 7

    def test_inconsistent_tracks_rejected(self, cfg):
        ch = MultipathChannel(cfg, [
            PropagationPath("a", 0.4, 1e-4, displacement_m=np.zeros(7)),
            PropagationPath("b", 0.5, 1e-4, displacement_m=np.zeros(9)),
        ])
        with pytest.raises(ValueError):
            ch.infer_n_frames()

    def test_track_vs_requested_frames_mismatch(self, cfg):
        ch = MultipathChannel(
            cfg, [PropagationPath("a", 0.4, 1e-4, displacement_m=np.zeros(7))]
        )
        with pytest.raises(ValueError):
            ch.baseband_frames(n_frames=9)

    def test_empty_channel_rejected(self, cfg):
        with pytest.raises(ValueError):
            MultipathChannel(cfg, []).baseband_frames(n_frames=1)

    def test_static_profile_ignores_tracks(self, cfg):
        moving = PropagationPath(
            "t", 0.4, 1e-4, displacement_m=np.linspace(0, 0.01, 5)
        )
        ch = MultipathChannel(cfg, [moving])
        profile = ch.static_profile()
        assert np.argmax(np.abs(profile)) == cfg.range_to_bin(0.4)
        # Tracks must be restored afterwards.
        assert moving.displacement_m is not None

    def test_range_sigma_matches_pulse(self, cfg):
        ch = MultipathChannel(cfg, [PropagationPath("t", 0.4, 1e-4)])
        # σ_r = c σ_p / 2 ≈ 5.2 cm for the 1.4 GHz pulse.
        assert ch.range_sigma_m == pytest.approx(0.0517, rel=0.02)

    def test_two_close_reflectors_unresolved(self, cfg):
        # Closer than c/2B: envelopes blur together (single broad lobe).
        ch = MultipathChannel(cfg, [
            PropagationPath("a", 0.40, 1e-4),
            PropagationPath("b", 0.44, 1e-4),
        ])
        frame = np.abs(ch.baseband_frames(n_frames=1)[0])
        from repro.dsp.peaks import local_maxima
        peaks = local_maxima(frame, min_distance=3)
        significant = [p for p in peaks if frame[p] > 0.3 * frame.max()]
        assert len(significant) == 1

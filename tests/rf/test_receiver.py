"""Tests for repro.rf.receiver: the explicit RF chain must agree with the
analytic baseband model used everywhere else."""

import numpy as np
import pytest

from repro.rf.channel import PropagationPath
from repro.rf.config import RadarConfig
from repro.rf.receiver import QuadratureReceiver


@pytest.fixture(scope="module")
def rx():
    return QuadratureReceiver(RadarConfig())


class TestChainVsAnalytic:
    def test_single_path_agreement(self, rx):
        paths = [PropagationPath("t", 0.4, 1e-4)]
        full = rx.baseband_frame(paths)
        analytic = rx.analytic_frame(paths)
        err = np.max(np.abs(full - analytic)) / np.max(np.abs(analytic))
        assert err < 0.02

    def test_multipath_agreement(self, rx):
        paths = [
            PropagationPath("a", 0.3, 2e-4),
            PropagationPath("b", 0.75, 4e-4),
            PropagationPath("c", 1.1, 1e-4),
        ]
        full = rx.baseband_frame(paths)
        analytic = rx.analytic_frame(paths)
        err = np.max(np.abs(full - analytic)) / np.max(np.abs(analytic))
        assert err < 0.02

    def test_phase_agreement_at_peak(self, rx):
        paths = [PropagationPath("t", 0.62, 1e-4)]
        cfg = rx.config
        b = cfg.range_to_bin(0.62)
        full = rx.baseband_frame(paths)[b]
        analytic = rx.analytic_frame(paths)[b]
        assert np.angle(full / analytic) == pytest.approx(0.0, abs=0.05)


class TestChainPieces:
    def test_passband_is_real(self, rx):
        y = rx.passband_frame([PropagationPath("t", 0.4, 1e-4)])
        assert np.isrealobj(y)

    def test_demodulate_recovers_amplitude(self, rx):
        # A pure carrier of amplitude A demodulates to |b| = A.
        t = rx.fast_time_axis()
        carrier = 0.5 * np.cos(2 * np.pi * rx.config.carrier_hz * t)
        base = rx.demodulate(carrier)
        mid = len(base) // 2
        assert abs(base[mid]) == pytest.approx(0.5, rel=0.05)

    def test_empty_paths_rejected(self, rx):
        with pytest.raises(ValueError):
            rx.passband_frame([])
        with pytest.raises(ValueError):
            rx.analytic_frame([])

    def test_nyquist_guard(self):
        cfg = RadarConfig(fast_time_rate_hz=24e9, carrier_hz=14e9, bandwidth_hz=1e9)
        with pytest.raises(ValueError):
            QuadratureReceiver(cfg).passband_frame([PropagationPath("t", 0.4, 1e-4)])

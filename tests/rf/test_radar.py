"""Tests for repro.rf.radar."""

import numpy as np
import pytest

from repro.rf.channel import MultipathChannel, PropagationPath
from repro.rf.config import RadarConfig
from repro.rf.radar import FrameBatch, UwbRadar


@pytest.fixture()
def radar():
    cfg = RadarConfig()
    r = UwbRadar(config=cfg)
    r.attach_channel(MultipathChannel(cfg, [PropagationPath("t", 0.4, 1e-4)]))
    return r


class TestUwbRadar:
    def test_capture_shapes(self, radar):
        batch = radar.capture(n_frames=10)
        assert batch.n_frames == 10
        assert batch.n_bins == radar.config.n_bins

    def test_timestamps_at_frame_period(self, radar):
        batch = radar.capture(n_frames=5)
        assert np.allclose(np.diff(batch.timestamps_s), radar.config.frame_period_s)

    def test_capture_without_channel(self):
        with pytest.raises(RuntimeError):
            UwbRadar().capture(n_frames=1)

    def test_channel_config_mismatch_rejected(self):
        r = UwbRadar(config=RadarConfig())
        other = MultipathChannel(
            RadarConfig(max_range_m=2.0), [PropagationPath("t", 0.4, 1e-4)]
        )
        with pytest.raises(ValueError):
            r.attach_channel(other)

    def test_stream_chunks_cover_capture(self, radar):
        chunks = list(radar.stream(n_frames=10, chunk=3))
        assert [c.n_frames for c in chunks] == [3, 3, 3, 1]
        total = np.concatenate([c.frames for c in chunks])
        assert total.shape[0] == 10

    def test_stream_rejects_bad_chunk(self, radar):
        with pytest.raises(ValueError):
            list(radar.stream(n_frames=5, chunk=0))

    def test_framebatch_validation(self):
        with pytest.raises(ValueError):
            FrameBatch(timestamps_s=np.zeros(2), frames=np.zeros((3, 4)))

"""Tests for repro.rf.geometry and repro.rf.materials."""

import pytest

from repro.rf.geometry import AntennaPattern, SensorPose, aspect_gain
from repro.rf.materials import LENS_TRANSMISSION, MATERIALS, Material, get_material


class TestAntennaPattern:
    def test_boresight_unity(self):
        assert AntennaPattern().gain(0, 0) == pytest.approx(1.0)

    def test_half_power_at_hpbw(self):
        ant = AntennaPattern(hpbw_azimuth_deg=65.0)
        assert ant.gain(32.5, 0) == pytest.approx(0.5, rel=1e-6)

    def test_monotone_decrease(self):
        ant = AntennaPattern()
        gains = [ant.gain(a, 0) for a in (0, 15, 30, 45, 60)]
        assert all(a > b for a, b in zip(gains, gains[1:]))

    def test_two_way_is_square(self):
        ant = AntennaPattern()
        assert ant.two_way_gain(20, 10) == pytest.approx(ant.gain(20, 10) ** 2)

    def test_separable_planes(self):
        ant = AntennaPattern()
        assert ant.gain(20, 30) == pytest.approx(ant.gain(20, 0) * ant.gain(0, 30))

    def test_rejects_bad_beamwidth(self):
        with pytest.raises(ValueError):
            AntennaPattern(hpbw_azimuth_deg=0)


class TestAspectGain:
    def test_normal_incidence_unity(self):
        assert aspect_gain(0, 0) == pytest.approx(1.0)

    def test_azimuth_sharper_than_elevation(self):
        # The eye-socket geometry shadows azimuth faster (Fig. 15(c) vs (d)).
        assert aspect_gain(30, 0) < aspect_gain(0, 30)

    def test_steep_loss_past_30(self):
        assert aspect_gain(45, 0) < 0.1

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            aspect_gain(0, 0, azimuth_width_deg=0)


class TestSensorPose:
    def test_paper_default(self):
        pose = SensorPose()
        assert pose.distance_m == pytest.approx(0.4)

    def test_invalid_poses(self):
        with pytest.raises(ValueError):
            SensorPose(distance_m=0)
        with pytest.raises(ValueError):
            SensorPose(azimuth_deg=90)
        with pytest.raises(ValueError):
            SensorPose(elevation_deg=-5)


class TestMaterials:
    def test_blink_contrast_sign(self):
        # Paper Sec. IV-C / Fig. 9: the open eye returns MORE than the
        # eyelid, so closing shrinks the amplitude.
        assert MATERIALS["eyeball"].reflectivity > MATERIALS["eyelid_skin"].reflectivity

    def test_metal_strongest(self):
        assert MATERIALS["metal"].reflectivity == max(
            m.reflectivity for m in MATERIALS.values()
        )

    def test_all_reflectivities_valid(self):
        for m in MATERIALS.values():
            assert 0.0 <= m.reflectivity <= 1.0

    def test_lens_ordering(self):
        # Fig. 16(a): sunglasses attenuate a bit more than myopia lenses.
        assert LENS_TRANSMISSION["none"] > LENS_TRANSMISSION["myopia"] > LENS_TRANSMISSION["sunglasses"]

    def test_get_material_error_message(self):
        with pytest.raises(KeyError, match="known materials"):
            get_material("vibranium")

    def test_material_validation(self):
        with pytest.raises(ValueError):
            Material("bad", 1.5)

"""Tests for repro.rf.regulatory (FCC mask, derivative pulses)."""

import numpy as np
import pytest

from repro.rf.pulse import GaussianPulse
from repro.rf.regulatory import (
    FCC_INDOOR_MASK,
    GaussianDerivativePulse,
    check_mask_compliance,
    mask_limit_dbm_mhz,
)


class TestMask:
    def test_in_band_limit(self):
        assert mask_limit_dbm_mhz(7.3e9) == pytest.approx(-41.3)

    def test_gps_band_strictest(self):
        assert mask_limit_dbm_mhz(1.2e9) == pytest.approx(-75.3)
        assert mask_limit_dbm_mhz(1.2e9) == min(
            limit for _, _, limit in FCC_INDOOR_MASK
        )

    def test_mask_piecewise_continuous_coverage(self):
        # Every frequency maps to exactly one segment.
        for f in (0, 0.5e9, 1e9, 1.8e9, 2.5e9, 5e9, 12e9, 100e9):
            assert isinstance(mask_limit_dbm_mhz(f), float)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            mask_limit_dbm_mhz(-1.0)


class TestCompliance:
    def test_papers_signal_is_compliant(self):
        # 7.3 GHz carrier, 1.4 GHz bandwidth: inside 3.1-10.6 GHz with
        # steep Gaussian skirts — compliant by design.
        pulse = GaussianPulse()
        _, x = pulse.waveform(60e9)
        report = check_mask_compliance(x, 60e9)
        assert report.compliant
        assert report.worst_margin_db >= 0

    def test_low_carrier_violates_gps_band(self):
        # A pulse centred near 1.2 GHz slams into the -75.3 dBm/MHz band.
        pulse = GaussianPulse(carrier_hz=1.2e9, bandwidth_hz=0.5e9)
        _, x = pulse.waveform(60e9)
        report = check_mask_compliance(x, 60e9)
        assert not report.compliant
        assert report.worst_frequency_hz < 3.1e9

    def test_sample_rate_must_cover_band(self):
        with pytest.raises(ValueError):
            check_mask_compliance(np.ones(64), 1e9)

    def test_short_waveform_rejected(self):
        with pytest.raises(ValueError):
            check_mask_compliance(np.ones(4), 60e9)


class TestGaussianDerivativePulse:
    def test_no_dc_component(self):
        _, x = GaussianDerivativePulse(order=5).waveform(60e9)
        assert abs(np.sum(x)) < 1e-6 * np.abs(x).sum()

    def test_peak_frequency_scales_with_order(self):
        sigma = GaussianDerivativePulse().sigma_s
        for order in (1, 4, 9):
            pulse = GaussianDerivativePulse(order=order, sigma_s=sigma)
            _, x = pulse.waveform(60e9)
            spectrum = np.abs(np.fft.rfft(x, n=1 << 16))
            freqs = np.fft.rfftfreq(1 << 16, d=1 / 60e9)
            measured = freqs[np.argmax(spectrum)]
            assert measured == pytest.approx(pulse.peak_frequency_hz, rel=0.05)

    def test_higher_order_moves_energy_up(self):
        sigma = 0.05e-9
        low = GaussianDerivativePulse(order=2, sigma_s=sigma)
        high = GaussianDerivativePulse(order=10, sigma_s=sigma)
        assert high.peak_frequency_hz > 2 * low.peak_frequency_hz

    def test_unit_peak(self):
        _, x = GaussianDerivativePulse(order=3, amplitude=2.5).waveform(60e9)
        assert np.abs(x).max() == pytest.approx(2.5)

    def test_high_order_carrierless_pulse_can_comply(self):
        # Design a carrierless pulse peaking ~7 GHz via order/sigma and
        # check the mask: the classic UWB pulse-shaping exercise.
        order = 9
        sigma = np.sqrt(order) / (2 * np.pi * 7e9)
        pulse = GaussianDerivativePulse(order=order, sigma_s=sigma)
        _, x = pulse.waveform(60e9)
        report = check_mask_compliance(x, 60e9)
        assert report.compliant

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            GaussianDerivativePulse(order=0)

    def test_bad_sample_rate(self):
        with pytest.raises(ValueError):
            GaussianDerivativePulse().waveform(0.0)

"""Tests for repro.rf.config and repro.rf.constants."""

import numpy as np
import pytest

from repro.rf.config import RadarConfig
from repro.rf.constants import (
    SPEED_OF_LIGHT,
    db_to_linear,
    linear_to_db,
    phase_change,
    range_resolution,
    wavelength,
)


class TestConstants:
    def test_wavelength_at_carrier(self):
        assert wavelength(7.3e9) == pytest.approx(0.04107, rel=1e-3)

    def test_range_resolution_paper_bandwidth(self):
        # c/2B for 1.4 GHz = 10.7 cm (not the paper's misprinted 1.07 cm).
        assert range_resolution(1.4e9) == pytest.approx(0.1071, rel=1e-3)

    def test_db_roundtrip(self):
        assert linear_to_db(db_to_linear(-10.0)) == pytest.approx(-10.0)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)

    def test_phase_change_eq9(self):
        # Δφ = −4π f0 Δd / c: 1 mm at 7.3 GHz ≈ −0.306 rad.
        assert phase_change(7.3e9, 1e-3) == pytest.approx(-0.3059, rel=1e-3)

    def test_phase_change_sign(self):
        # Moving away (positive Δd) retards the phase.
        assert phase_change(7.3e9, 1e-3) < 0
        assert phase_change(7.3e9, -1e-3) > 0

    def test_wavelength_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            wavelength(0.0)


class TestRadarConfig:
    def test_paper_defaults(self):
        cfg = RadarConfig()
        assert cfg.carrier_hz == 7.3e9
        assert cfg.bandwidth_hz == 1.4e9
        assert cfg.frame_period_s == pytest.approx(0.040)  # the "40mm" typo

    def test_bin_spacing_from_sampler(self):
        cfg = RadarConfig()
        assert cfg.bin_spacing_m == pytest.approx(
            SPEED_OF_LIGHT / (2 * 23.328e9), rel=1e-9
        )

    def test_n_bins_covers_max_range(self):
        cfg = RadarConfig()
        assert cfg.n_bins * cfg.bin_spacing_m >= cfg.max_range_m

    def test_bin_roundtrip(self):
        cfg = RadarConfig()
        for r in (0.2, 0.4, 0.8, 1.2):
            b = cfg.range_to_bin(r)
            assert abs(cfg.bin_to_range(b) - r) <= cfg.bin_spacing_m / 2

    def test_bin_ranges_monotone(self):
        cfg = RadarConfig()
        assert np.all(np.diff(cfg.bin_ranges_m) > 0)
        assert len(cfg.bin_ranges_m) == cfg.n_bins

    def test_resolution_much_coarser_than_spacing(self):
        cfg = RadarConfig()
        assert cfg.range_resolution_m > 10 * cfg.bin_spacing_m

    def test_negative_range_rejected(self):
        with pytest.raises(ValueError):
            RadarConfig().range_to_bin(-0.1)
        with pytest.raises(ValueError):
            RadarConfig().bin_to_range(-1)

    @pytest.mark.parametrize("field,value", [
        ("carrier_hz", 0), ("bandwidth_hz", -1), ("frame_rate_hz", 0),
        ("fast_time_rate_hz", 0), ("max_range_m", 0), ("tx_amplitude", 0),
        ("noise_sigma", -1e-9),
    ])
    def test_invalid_fields(self, field, value):
        with pytest.raises(ValueError):
            RadarConfig(**{field: value})

    def test_bandwidth_vs_carrier_sanity(self):
        with pytest.raises(ValueError):
            RadarConfig(carrier_hz=1e9, bandwidth_hz=3e9)

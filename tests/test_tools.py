"""Tests for the EXPERIMENTS.md assembler tool."""

import importlib.util
import sys
from pathlib import Path

import pytest

TOOL = Path(__file__).parent.parent / "tools" / "build_experiments_md.py"


def load_tool():
    spec = importlib.util.spec_from_file_location("build_experiments_md", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestAssembler:
    def test_parse_blocks(self):
        tool = load_tool()
        text = "Title A\n-----\nrow 1\n\nTitle B\n-----\nrow 2\n"
        blocks = tool.parse_blocks(text)
        assert [t for t, _ in blocks] == ["Title A", "Title B"]
        assert "row 2" in blocks[1][1]

    def test_sections_reference_unique_prefixes(self):
        tool = load_tool()
        prefixes = [p for p, _, _ in tool.SECTIONS]
        assert len(prefixes) == len(set(prefixes))

    def test_every_section_prefix_has_a_benchmark(self):
        # Every prefix must correspond to a print_block title emitted by
        # some benchmark (checked textually against the bench sources).
        tool = load_tool()
        bench_dir = Path(__file__).parent.parent / "benchmarks"
        source = "\n".join(p.read_text() for p in bench_dir.glob("test_*.py"))
        for prefix, _, _ in tool.SECTIONS:
            # The title string appears (possibly formatted) in some file.
            head = prefix.split(":")[0].split(" — ")[0]
            assert head.split("(")[0].strip()[:8] in source, prefix

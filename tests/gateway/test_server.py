"""Gateway server end-to-end: socket ingest == local replay, bit for bit.

The battery drives a real asyncio server over loopback sockets and pins
the subsystem's central claims:

- the server-side recording of socket-ingested traffic content-hashes
  equal to the source trace (nothing added, lost, or requantised);
- detection output through the gateway is identical to feeding the
  detector directly;
- backpressure sheds frames visibly (counted, reported) and never
  silently;
- one hostile connection cannot take down a well-behaved neighbour.
"""

from __future__ import annotations

import asyncio
import struct
import zlib

import numpy as np

from repro.core.realtime import RealTimeBlinkDetector
from repro.gateway.client import GatewayClient
from repro.gateway.protocol import HEADER_BYTES, MAGIC, encode_frame_payload, encode_message, Hello
from repro.gateway.server import GatewayServer
from repro.store.catalog import Catalog
from repro.store.reader import TraceReader
from repro.store.replay import ReplaySource


async def _replay_through_gateway(
    server: GatewayServer, trace_path, session_id: str, max_frames: int | None = None
):
    """Standard client flow; returns (session object, drain stats, client)."""
    client = await GatewayClient.connect(server.host, server.port)
    try:
        with ReplaySource(trace_path) as source:
            await client.hello(
                session_id, n_bins=source.n_bins, frame_rate_hz=source.frame_rate_hz
            )
            for seq, (stamp_s, frame) in enumerate(source):
                if max_frames is not None and seq >= max_frames:
                    break
                await client.send_frame(seq, stamp_s, frame)
        stats = await client.drain()
        session = server.sessions[session_id]
        await client.bye()
    finally:
        await client.close()
    return session, stats, client


class TestEndToEnd:
    def test_recording_content_hash_equals_source(self, gateway_trace_path, tmp_path):
        async def scenario():
            record_dir = tmp_path / "rec"
            server = GatewayServer(workers=2, record_dir=record_dir)
            await server.start()
            try:
                _, stats, _ = await _replay_through_gateway(
                    server, gateway_trace_path, "v00"
                )
            finally:
                await server.shutdown()
            return record_dir, stats

        record_dir, stats = asyncio.run(scenario())
        source_hash = TraceReader(gateway_trace_path).content_hash()
        recorded = TraceReader(record_dir / "v00.rst")
        assert recorded.content_hash() == source_hash
        assert stats["dropped_queue"] == 0
        assert stats["processed"] == recorded.n_frames
        # The finalized recording is registered in the catalog.
        catalog = Catalog(record_dir)
        assert "v00" in catalog
        assert catalog.entry("v00").content_hash == source_hash

    def test_detection_identical_to_direct_replay(self, gateway_trace_path):
        async def scenario():
            server = GatewayServer(workers=2)
            await server.start()
            try:
                session, stats, _ = await _replay_through_gateway(
                    server, gateway_trace_path, "v01"
                )
            finally:
                await server.shutdown()
            return session, stats

        session, stats = asyncio.run(scenario())

        # Direct reference: the same frames through the same streaming
        # detector, no sockets anywhere.
        with ReplaySource(gateway_trace_path) as source:
            frames = np.asarray(source)
            frame_rate_hz = source.frame_rate_hz
        detector = RealTimeBlinkDetector(frame_rate_hz)
        events = [
            s.event for s in detector.process_block(frames) if s.event is not None
        ]
        tail = detector.finish()
        if tail is not None:
            events.append(tail)

        assert stats["processed"] == len(frames)
        assert [e.frame_index for e in session.blink_events] == [
            e.frame_index for e in events
        ]
        assert len(events) > 0  # the fixture drive blinks

    def test_client_latency_samples_collected(self, gateway_trace_path):
        async def scenario():
            server = GatewayServer(workers=2)
            await server.start()
            try:
                _, _, client = await _replay_through_gateway(
                    server, gateway_trace_path, "v02", max_frames=120
                )
            finally:
                await server.shutdown()
            return client

        client = asyncio.run(scenario())
        assert client.latency_samples_s
        assert all(s >= 0 for s in client.latency_samples_s)
        assert client.acked_received >= 0

    def test_complex128_trace_survives_the_wire_unquantised(
        self, gateway_trace, tmp_path
    ):
        # Device recordings can be complex128; the load generator must
        # follow the recording's own dtype or transit would quantise to
        # complex64 and break hash equality (regression: the default
        # used to hard-code c64).
        from repro.gateway.loadgen import LoadGenerator
        from repro.store.writer import TraceWriter

        source_path = tmp_path / "wide.rst"
        with TraceWriter(
            source_path,
            n_bins=gateway_trace.n_bins,
            frame_rate_hz=gateway_trace.frame_rate_hz,
            dtype=np.complex128,
        ) as writer:
            for i in range(100):
                writer.append(
                    gateway_trace.frames[i].astype(np.complex128),
                    i / gateway_trace.frame_rate_hz,
                )

        async def scenario():
            record_dir = tmp_path / "rec"
            server = GatewayServer(workers=2, record_dir=record_dir)
            await server.start()
            try:
                report = await LoadGenerator(
                    server.host, server.port, source_path, vehicles=1
                ).run()
            finally:
                await server.shutdown()
            return record_dir, report

        record_dir, report = asyncio.run(scenario())
        assert report.dropped_queue == 0
        with TraceReader(source_path) as reader:
            source_hash = reader.content_hash()
        with TraceReader(record_dir / "veh000.rst") as reader:
            assert reader.read().dtype == np.complex128
            assert reader.content_hash() == source_hash


class TestConcurrentFinalization:
    def test_simultaneous_byes_all_get_replies_and_recordings(
        self, gateway_trace_path, tmp_path
    ):
        """Several sessions saying BYE at once must all finalize cleanly.

        Recording finalization runs on executor threads, so a fleet
        replaying the same drive lands several catalog registrations
        concurrently. Regression: the registrations raced on the
        catalog manifest's read-modify-write, the BYE handler blew up,
        and clients saw the connection close without a BYE reply.
        """
        from repro.gateway.loadgen import LoadGenerator

        async def scenario():
            record_dir = tmp_path / "rec"
            server = GatewayServer(workers=4, record_dir=record_dir)
            await server.start()
            try:
                # run() raises the first vehicle failure (e.g. a BYE
                # that never got its reply), so merely completing is
                # half the assertion.
                report = await LoadGenerator(
                    server.host, server.port, gateway_trace_path, vehicles=6
                ).run()
            finally:
                await server.shutdown()
            return record_dir, report

        record_dir, report = asyncio.run(scenario())
        assert report.dropped_queue == 0
        with TraceReader(gateway_trace_path) as reader:
            source_hash = reader.content_hash()
        recordings = sorted(record_dir.glob("veh*.rst"))
        assert len(recordings) == 6
        for path in recordings:
            with TraceReader(path) as reader:
                assert reader.content_hash() == source_hash
        # No torn or leftover manifest temp files either.
        assert not list(record_dir.glob("*.tmp"))
        assert not list(record_dir.glob(".manifest.*"))


class TestBackpressure:
    def test_overload_drops_are_counted_never_silent(self, gateway_trace_path):
        async def scenario():
            # A 4-deep queue against an unpaced replay guarantees
            # shedding.
            server = GatewayServer(workers=1, queue_depth=4)
            await server.start()
            try:
                _, stats, _ = await _replay_through_gateway(
                    server, gateway_trace_path, "v03"
                )
                dropped_metric = server.metrics.counter("fleet.dropped_queue").value
            finally:
                await server.shutdown()
            return stats, dropped_metric

        stats, dropped_metric = asyncio.run(scenario())
        assert stats["dropped_queue"] > 0
        assert dropped_metric >= stats["dropped_queue"]
        # Conservation: every submitted frame either reached the
        # detector or was shed — drain guarantees nothing is in flight.
        assert stats["processed"] + stats["dropped_queue"] == stats["submitted"]

    def test_below_threshold_loses_nothing(self, gateway_trace_path):
        async def scenario():
            server = GatewayServer(workers=2, queue_depth=4096)
            await server.start()
            try:
                _, stats, _ = await _replay_through_gateway(
                    server, gateway_trace_path, "v04"
                )
            finally:
                await server.shutdown()
            return stats

        stats = asyncio.run(scenario())
        assert stats["dropped_queue"] == 0
        assert stats["processed"] == stats["received"]


class TestFaultIsolation:
    def test_protocol_violation_isolated_from_neighbour(self, gateway_trace_path):
        async def scenario():
            server = GatewayServer(workers=2)
            await server.start()
            try:
                # Hostile: FRAME before HELLO is a protocol violation.
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                from repro.gateway.protocol import Frame

                writer.write(
                    encode_message(
                        Frame(session=0, seq=0, timestamp_s=0.0, payload=b"\x00" * 8)
                    )
                )
                await writer.drain()
                assert await reader.read() == b""  # server hangs up
                writer.close()

                # The neighbour is unaffected.
                _, stats, _ = await _replay_through_gateway(
                    server, gateway_trace_path, "v05", max_frames=60
                )
                errors = server.metrics.counter("gateway.connection_errors").value
            finally:
                await server.shutdown()
            return stats, errors

        stats, errors = asyncio.run(scenario())
        assert errors == 1
        assert stats["processed"] == 60

    def test_duplicate_session_id_rejected_first_wins(self, gateway_trace_path):
        async def scenario():
            server = GatewayServer(workers=2)
            await server.start()
            try:
                first = await GatewayClient.connect(server.host, server.port)
                await first.hello("dup", n_bins=16, frame_rate_hz=25.0)

                second = await GatewayClient.connect(server.host, server.port)
                second._writer.write(
                    encode_message(Hello(session_id="dup", n_bins=16, frame_rate_hz=25.0))
                )
                await second._writer.drain()
                # The server drops the second connection instead of
                # hijacking the live session.
                await asyncio.sleep(0.05)
                errors = server.metrics.counter("gateway.connection_errors").value
                await second.close()

                frame = np.zeros(16, dtype=np.complex64)
                await first.send_frame(0, 0.0, frame)
                stats = await first.drain()
                await first.bye()
                await first.close()
            finally:
                await server.shutdown()
            return errors, stats

        errors, stats = asyncio.run(scenario())
        assert errors == 1
        assert stats["processed"] == 1

    def test_crc_corruption_counted_and_session_survives(self):
        async def scenario():
            server = GatewayServer(workers=1)
            await server.start()
            try:
                client = await GatewayClient.connect(server.host, server.port)
                await client.hello("crc", n_bins=8, frame_rate_hz=25.0)
                frame = np.ones(8, dtype=np.complex64)
                payload = encode_frame_payload(frame)
                from repro.gateway.protocol import Frame

                good = encode_message(
                    Frame(session=client.session_index, seq=0, timestamp_s=0.0, payload=payload)
                )
                bad = bytearray(good)
                bad[HEADER_BYTES + 2] ^= 0xFF  # corrupt the payload
                client._writer.write(bytes(bad) + good)
                await client._writer.drain()
                stats = await client.drain()
                crc_metric = server.metrics.counter("gateway.crc_failures").value
                await client.bye()
                await client.close()
            finally:
                await server.shutdown()
            return stats, crc_metric

        stats, crc_metric = asyncio.run(scenario())
        assert stats["crc_failures"] == 1
        assert crc_metric == 1
        assert stats["processed"] == 1  # the clean copy went through

    def test_wrong_payload_size_counted_as_bad_frame(self):
        async def scenario():
            server = GatewayServer(workers=1)
            await server.start()
            try:
                client = await GatewayClient.connect(server.host, server.port)
                await client.hello("bad", n_bins=8, frame_rate_hz=25.0)
                from repro.gateway.protocol import Frame

                client._writer.write(
                    encode_message(
                        Frame(
                            session=client.session_index,
                            seq=0,
                            timestamp_s=0.0,
                            payload=b"\x01" * 12,  # not 8 bins of c64
                        )
                    )
                )
                await client._writer.drain()
                stats = await client.drain()
                await client.bye()
                await client.close()
            finally:
                await server.shutdown()
            return stats

        stats = asyncio.run(scenario())
        assert stats["bad_frames"] == 1
        assert stats["processed"] == 0


class TestLifecycle:
    def test_shutdown_finalizes_live_sessions(self, gateway_trace_path, tmp_path):
        async def scenario():
            record_dir = tmp_path / "rec"
            server = GatewayServer(workers=2, record_dir=record_dir)
            await server.start()
            client = await GatewayClient.connect(server.host, server.port)
            with ReplaySource(gateway_trace_path) as source:
                await client.hello(
                    "live", n_bins=source.n_bins, frame_rate_hz=source.frame_rate_hz
                )
                for seq, (stamp_s, frame) in enumerate(source):
                    if seq >= 50:
                        break
                    await client.send_frame(seq, stamp_s, frame)
            # No BYE: the server is shut down mid-session and must
            # still drain + finalize the recording.
            await server.shutdown()
            await client.close()
            return record_dir

        record_dir = asyncio.run(scenario())
        recorded = TraceReader(record_dir / "live.rst")
        assert recorded.n_frames == 50
        assert "live" in Catalog(record_dir)

    def test_empty_session_leaves_no_recording(self, tmp_path):
        async def scenario():
            record_dir = tmp_path / "rec"
            server = GatewayServer(workers=1, record_dir=record_dir)
            await server.start()
            try:
                client = await GatewayClient.connect(server.host, server.port)
                await client.hello("ghost", n_bins=8, frame_rate_hz=25.0)
                await client.bye()
                await client.close()
            finally:
                await server.shutdown()
            return record_dir

        record_dir = asyncio.run(scenario())
        assert not (record_dir / "ghost.rst").exists()

    def test_health_and_ready_lifecycle(self):
        async def scenario():
            server = GatewayServer(workers=1)
            assert not server.ready
            await server.start()
            ready_started = server.ready
            health = server.health()
            await server.shutdown()
            return ready_started, health, server.ready, server.health()

        ready_started, health, ready_after, health_after = asyncio.run(scenario())
        assert ready_started
        assert health["status"] == "ok"
        assert not ready_after
        assert health_after["status"] == "stopped"

    def test_sessions_share_scheduler_and_metrics(self, gateway_trace_path):
        async def scenario():
            server = GatewayServer(workers=2)
            await server.start()
            try:
                results = await asyncio.gather(
                    _replay_through_gateway(server, gateway_trace_path, "m0", max_frames=80),
                    _replay_through_gateway(server, gateway_trace_path, "m1", max_frames=80),
                    _replay_through_gateway(server, gateway_trace_path, "m2", max_frames=80),
                )
                processed = server.metrics.counter("fleet.frames_processed").value
                opened = server.metrics.counter("gateway.sessions_opened").value
            finally:
                await server.shutdown()
            return results, processed, opened

        results, processed, opened = asyncio.run(scenario())
        assert processed == 240
        assert opened == 3
        for _, stats, _ in results:
            assert stats["processed"] == 80
            assert stats["dropped_queue"] == 0

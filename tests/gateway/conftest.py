"""Gateway-suite fixtures: one small simulated drive as a ``.rst`` file.

The gateway tests replay a realistic labelled capture (blinks included)
through sockets; simulation and file I/O are paid once per session.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.physio import ParticipantProfile
from repro.sim import Scenario, simulate
from repro.store.writer import TraceWriter


@pytest.fixture(scope="session")
def gateway_trace():
    """A 12 s parked awake drive: cheap, several blinks, no restarts."""
    scenario = Scenario(
        participant=ParticipantProfile("GWT"),
        road="parked",
        state="awake",
        duration_s=12.0,
        allow_posture_shifts=False,
    )
    return simulate(scenario, seed=41)


@pytest.fixture(scope="session")
def gateway_trace_path(gateway_trace, tmp_path_factory) -> Path:
    """The same drive as an ``.rst`` recording on disk."""
    path = tmp_path_factory.mktemp("gateway") / "drive.rst"
    with TraceWriter(
        path, n_bins=gateway_trace.n_bins, frame_rate_hz=gateway_trace.frame_rate_hz
    ) as writer:
        for i in range(gateway_trace.n_frames):
            writer.append(gateway_trace.frames[i], i / gateway_trace.frame_rate_hz)
    return path

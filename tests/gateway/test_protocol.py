"""Wire protocol: round-trips, incremental decoding, and hostile input.

The fuzz battery encodes the decoder's survival contract: *no byte
sequence may make it raise or stall*, corruption is counted not thrown,
and a valid message following garbage is always recovered via magic
resync.
"""

from __future__ import annotations

import json
import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gateway.protocol import (
    HEADER_BYTES,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    MSG_FRAME,
    Ack,
    Bye,
    Drain,
    Frame,
    Hello,
    ProtocolError,
    WireDecoder,
    decode_frame_payload,
    encode_frame_payload,
    encode_message,
)


def _messages() -> list:
    rng = np.random.default_rng(3)
    frame = (rng.standard_normal(16) + 1j * rng.standard_normal(16)).astype(np.complex64)
    return [
        Hello(session_id="v00", n_bins=16, frame_rate_hz=25.0),
        Frame(session=1, seq=7, timestamp_s=0.28, payload=encode_frame_payload(frame)),
        Ack(session=1, seq=8, received_seq=7, processed=6),
        Drain(session=1),
        Drain(session=1, stats={"received": 8, "dropped_queue": 0}),
        Bye(session=1),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("msg", _messages(), ids=lambda m: type(m).__name__)
    def test_encode_decode_identity(self, msg):
        decoder = WireDecoder()
        out = decoder.feed(encode_message(msg))
        assert out == [msg]
        assert decoder.pending_bytes == 0
        assert decoder.crc_failures == 0

    def test_frame_payload_round_trip_both_dtypes(self):
        rng = np.random.default_rng(9)
        frame = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        for dtype, np_dtype in (("c64", np.complex64), ("c128", np.complex128)):
            typed = frame.astype(np_dtype)
            back = decode_frame_payload(encode_frame_payload(typed, dtype), 32, dtype)
            assert back.dtype == np.dtype(np_dtype).newbyteorder("<")
            np.testing.assert_array_equal(back, typed)

    def test_frame_payload_length_validated(self):
        with pytest.raises(ProtocolError):
            decode_frame_payload(b"\x00" * 12, n_bins=16, dtype="c64")

    def test_hello_rejects_bad_fields(self):
        with pytest.raises(ProtocolError):
            Hello(session_id="", n_bins=16, frame_rate_hz=25.0)
        with pytest.raises(ProtocolError):
            Hello(session_id="x", n_bins=0, frame_rate_hz=25.0)
        with pytest.raises(ProtocolError):
            Hello(session_id="x", n_bins=16, frame_rate_hz=0.0)
        with pytest.raises(ProtocolError):
            Hello(session_id="x", n_bins=16, frame_rate_hz=25.0, dtype="f32")

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_message(
                Frame(session=0, seq=0, timestamp_s=0.0, payload=b"\x00" * (MAX_PAYLOAD_BYTES + 1))
            )


class TestIncrementalDecoding:
    def test_byte_at_a_time(self):
        wire = b"".join(encode_message(m) for m in _messages())
        decoder = WireDecoder()
        out = []
        for i in range(len(wire)):
            out.extend(decoder.feed(wire[i : i + 1]))
        assert out == _messages()
        assert decoder.pending_bytes == 0

    def test_interleaved_with_leading_garbage(self):
        wire = b"\xde\xad\xbe\xef\x00" + b"".join(encode_message(m) for m in _messages())
        decoder = WireDecoder()
        out = []
        for i in range(0, len(wire), 3):
            out.extend(decoder.feed(wire[i : i + 3]))
        assert out == _messages()
        assert decoder.resync_bytes == 5

    def test_truncated_frame_stays_pending(self):
        wire = encode_message(_messages()[1])
        decoder = WireDecoder()
        assert decoder.feed(wire[:-1]) == []
        assert decoder.pending_bytes == len(wire) - 1
        assert decoder.feed(wire[-1:]) == [_messages()[1]]


class TestCorruption:
    def test_bit_flip_counts_crc_and_recovers(self):
        messages = _messages()
        first = bytearray(encode_message(messages[1]))
        first[HEADER_BYTES + 3] ^= 0x40  # flip one payload bit
        decoder = WireDecoder()
        out = decoder.feed(bytes(first) + encode_message(messages[2]))
        assert out == [messages[2]]
        assert decoder.crc_failures == 1

    def test_corrupt_length_field_does_not_stall(self):
        # Corrupt the length to a huge-but-capped value: the CRC fails
        # and the decoder must NOT trust the length to skip — the next
        # message follows immediately and must be recovered.
        messages = _messages()
        wire = bytearray(encode_message(messages[3]))
        struct.pack_into("<I", wire, 24, 512)  # claim 512 payload bytes
        decoder = WireDecoder()
        out = decoder.feed(bytes(wire) + encode_message(messages[5]) + b"\x00" * 600)
        assert messages[5] in out
        assert decoder.crc_failures >= 1

    def test_oversized_length_counted_and_resynced(self):
        wire = bytearray(encode_message(_messages()[5]))
        struct.pack_into("<I", wire, 24, MAX_PAYLOAD_BYTES + 1)
        decoder = WireDecoder()
        out = decoder.feed(bytes(wire) + encode_message(_messages()[0]))
        assert out == [_messages()[0]]
        assert decoder.oversized == 1

    def test_unknown_type_counted_and_resynced(self):
        payload = b"xyz"
        header = struct.pack(
            "<4sBBHQdII", MAGIC, 99, 0, 0, 0, 0.0, len(payload), zlib.crc32(payload)
        )
        decoder = WireDecoder()
        out = decoder.feed(header + payload + encode_message(_messages()[5]))
        assert out == [_messages()[5]]
        assert decoder.unknown_types == 1

    def test_semantic_error_counted_not_raised(self):
        payload = b"{not json"
        header = struct.pack(
            "<4sBBHQdII", MAGIC, 1, 0, 0, 0, 0.0, len(payload), zlib.crc32(payload)
        )
        decoder = WireDecoder()
        assert decoder.feed(header + payload) == []
        assert decoder.semantic_errors == 1

    def test_bad_ack_payload_is_semantic_error(self):
        payload = b"\x01\x02"
        header = struct.pack(
            "<4sBBHQdII", MAGIC, 3, 0, 1, 4, 0.0, len(payload), zlib.crc32(payload)
        )
        decoder = WireDecoder()
        assert decoder.feed(header + payload) == []
        assert decoder.semantic_errors == 1

    def test_embedded_magic_in_garbage(self):
        # Garbage containing magics must not desynchronise a following
        # valid stream.
        garbage = MAGIC + b"\x01\x02" + MAGIC + b"\xff" * 40
        decoder = WireDecoder()
        out = decoder.feed(garbage + encode_message(_messages()[0]))
        assert _messages()[0] in out


_chunkings = st.integers(min_value=1, max_value=97)


class TestFuzz:
    @given(
        data=st.lists(
            st.sampled_from(range(len(_messages()))), min_size=0, max_size=12
        ),
        chunk=_chunkings,
    )
    @settings(max_examples=60, deadline=None)
    def test_any_chunking_preserves_message_stream(self, data, chunk):
        messages = _messages()
        chosen = [messages[i] for i in data]
        wire = b"".join(encode_message(m) for m in chosen)
        decoder = WireDecoder()
        out = []
        for i in range(0, len(wire), chunk):
            out.extend(decoder.feed(wire[i : i + chunk]))
        assert out == chosen
        assert decoder.pending_bytes == 0

    @given(junk=st.binary(max_size=512), chunk=_chunkings)
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_bytes_never_crash(self, junk, chunk):
        decoder = WireDecoder()
        for i in range(0, len(junk), chunk):
            decoder.feed(junk[i : i + chunk])
        # Whatever happened, a fresh valid message must still decode.
        assert _messages()[0] in decoder.feed(encode_message(_messages()[0]))

    @given(
        index=st.integers(min_value=0, max_value=255),
        flip=st.integers(min_value=1, max_value=255),
        chunk=_chunkings,
    )
    @settings(max_examples=80, deadline=None)
    def test_single_byte_corruption_never_crashes_and_recovers(self, index, flip, chunk):
        messages = _messages()
        wire = bytearray(b"".join(encode_message(m) for m in messages))
        wire[index % len(wire)] ^= flip
        tail = encode_message(messages[0])
        decoder = WireDecoder()
        out = []
        stream = bytes(wire) + tail
        for i in range(0, len(stream), chunk):
            out.extend(decoder.feed(stream[i : i + chunk]))
        # A flip in a length field can forge an under-cap payload length
        # and leave the decoder legitimately waiting for bytes (on a live
        # socket they would eventually arrive and fail the CRC). Pad the
        # phantom payload out so the decoder settles before checking
        # recovery — the worst forgeable claim is just under the 1 MiB
        # cap, so 17 * 64 KiB always covers it.
        padding = b"\x00" * 65536
        for _ in range(17):
            if decoder.pending_bytes < HEADER_BYTES:
                break
            out.extend(decoder.feed(padding))
        # Once settled, the decoder must accept fresh traffic: feed one
        # more clean copy and require it to decode.
        out.extend(decoder.feed(tail))
        assert out and out[-1] == messages[0]

    @given(junk=st.binary(min_size=HEADER_BYTES, max_size=256))
    @settings(max_examples=60, deadline=None)
    def test_junk_between_every_message(self, junk):
        messages = _messages()
        decoder = WireDecoder()
        out = []
        for msg in messages:
            out.extend(decoder.feed(junk))
            out.extend(decoder.feed(encode_message(msg)))
        # Junk can eat at most the message following it if it ends in a
        # valid-looking header prefix; every message after clean resync
        # must appear, in order.
        positions = [out.index(m) for m in messages if m in out]
        assert positions == sorted(positions)
        assert len(positions) >= len(messages) - 1

    def test_corrupt_frame_increments_crc_counter_metric_contract(self):
        # The server turns decoder.crc_failures deltas into the
        # gateway.crc_failures metric: the counter must reflect every
        # rejected payload exactly once.
        messages = _messages()
        decoder = WireDecoder()
        for k in range(5):
            bad = bytearray(encode_message(messages[1]))
            bad[HEADER_BYTES + (k % 8)] ^= 0x10
            decoder.feed(bytes(bad))
        assert decoder.crc_failures == 5


class TestHelloJsonShape:
    def test_hello_payload_is_sorted_json(self):
        wire = encode_message(Hello(session_id="v07", n_bins=57, frame_rate_hz=25.0))
        payload = wire[HEADER_BYTES:]
        fields = json.loads(payload.decode())
        assert list(fields) == sorted(fields)
        assert fields["session_id"] == "v07"
        assert fields["n_bins"] == 57

"""The HTTP observability endpoint: scrape shapes, probes, error paths."""

from __future__ import annotations

import asyncio
import json

from repro.fleet.metrics import MetricsRegistry
from repro.gateway.http import MetricsHttpServer


async def _request(port: int, raw: bytes) -> tuple[str, dict[str, str], bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    data = await reader.read()
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(": ")
        headers[key.lower()] = value
    return lines[0], headers, body


def _with_server(registry, coro_fn, **kwargs):
    async def runner():
        server = MetricsHttpServer(registry, **kwargs)
        await server.start()
        try:
            return await coro_fn(server)
        finally:
            await server.stop()

    return asyncio.run(runner())


class TestMetricsRoute:
    def test_scrape_is_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("gateway.frames_received").inc(42)
        registry.gauge("gateway.connections_open").set(3)
        registry.histogram("session.v00.latency_s").observe(0.01)

        async def scrape(server):
            return await _request(
                server.port, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n"
            )

        status, headers, body = _with_server(registry, scrape)
        assert status == "HTTP/1.1 200 OK"
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        assert int(headers["content-length"]) == len(body)
        text = body.decode()
        assert "repro_gateway_frames_received_total 42" in text
        assert "repro_gateway_connections_open 3" in text
        assert 'repro_session_latency_s{session="v00",quantile="0.5"}' in text

    def test_health_route_reports_payload(self):
        async def probe(server):
            return await _request(server.port, b"GET /healthz HTTP/1.0\r\n\r\n")

        status, _, body = _with_server(
            MetricsRegistry(), probe, health=lambda: {"status": "ok", "sessions": {}}
        )
        assert status == "HTTP/1.1 200 OK"
        assert json.loads(body) == {"sessions": {}, "status": "ok"}

    def test_ready_route_flips_with_callable(self):
        ready = {"value": True}

        async def probe_both(server):
            up = await _request(server.port, b"GET /ready HTTP/1.1\r\nHost: t\r\n\r\n")
            ready["value"] = False
            down = await _request(server.port, b"GET /ready HTTP/1.1\r\nHost: t\r\n\r\n")
            return up, down

        up, down = _with_server(
            MetricsRegistry(), probe_both, ready=lambda: ready["value"]
        )
        assert up[0] == "HTTP/1.1 200 OK"
        assert down[0] == "HTTP/1.1 503 Service Unavailable"


class TestErrorPaths:
    def test_unknown_path_404(self):
        async def probe(server):
            return await _request(server.port, b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")

        status, _, _ = _with_server(MetricsRegistry(), probe)
        assert status == "HTTP/1.1 404 Not Found"

    def test_post_is_405(self):
        async def probe(server):
            return await _request(server.port, b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")

        status, _, _ = _with_server(MetricsRegistry(), probe)
        assert status == "HTTP/1.1 405 Method Not Allowed"

    def test_garbage_request_line_400(self):
        async def probe(server):
            return await _request(server.port, b"NOT A REQUEST\r\n\r\n")

        status, _, _ = _with_server(MetricsRegistry(), probe)
        assert status == "HTTP/1.1 400 Bad Request"

    def test_query_string_ignored(self):
        async def probe(server):
            return await _request(
                server.port, b"GET /ready?probe=1 HTTP/1.1\r\nHost: t\r\n\r\n"
            )

        status, _, _ = _with_server(MetricsRegistry(), probe)
        assert status == "HTTP/1.1 200 OK"

    def test_stop_is_idempotent(self):
        async def runner():
            server = MetricsHttpServer(MetricsRegistry())
            await server.start()
            await server.stop()
            await server.stop()

        asyncio.run(runner())

"""White-box tests of the real-time detector's adaptive machinery."""

import numpy as np
import pytest

from repro.core.realtime import RealTimeBlinkDetector, RealTimeConfig


def synthetic_frames(n_frames, n_bins=110, eye_bin=25, torso_bin=80, seed=0,
                     eye_amp=1.2e-4, torso_amp=4e-4, noise=5e-7):
    """Minimal two-reflector scene: swaying face + breathing torso.

    Amplitudes match the full simulator's face/torso returns so the bin
    selector's relative threshold behaves as it does on real scenes.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(n_frames) / 25.0
    frames = np.zeros((n_frames, n_bins), dtype=complex)
    bins = np.arange(n_bins)
    eye_env = np.exp(-((bins - eye_bin) ** 2) / (2 * 8.0**2))
    torso_env = np.exp(-((bins - torso_bin) ** 2) / (2 * 8.0**2))
    head_phase = 0.9 * np.sin(2 * np.pi * 0.25 * t)
    chest_phase = 2.5 * np.sin(2 * np.pi * 0.25 * t + 1.0)
    frames += eye_amp * np.exp(1j * head_phase)[:, None] * eye_env[None, :]
    frames += torso_amp * np.exp(1j * chest_phase)[:, None] * torso_env[None, :]
    frames += noise * (rng.normal(size=frames.shape) + 1j * rng.normal(size=frames.shape))
    return frames


class TestBinAdaptation:
    def test_selects_near_reflector_not_torso(self):
        frames = synthetic_frames(300)
        det = RealTimeBlinkDetector(25.0)
        for f in frames:
            det.process_frame(f)
        assert abs(det.selected_bin - 25) <= 6
        assert det.selected_bin < 55  # never the torso

    def test_stickiness_prevents_flapping(self):
        frames = synthetic_frames(600, seed=3)
        det = RealTimeBlinkDetector(25.0)
        bins = [det.process_frame(f).selected_bin for f in frames]
        used = {b for b in bins if b >= 0}
        # One stable reflector → at most a couple of neighbouring bins.
        assert len(used) <= 3
        assert max(used) - min(used) <= 6

    def test_reselect_follows_migrated_target(self):
        # Target hops 12 bins mid-stream (beyond tolerance): the adaptive
        # update (or a restart) must re-acquire it.
        a = synthetic_frames(500, eye_bin=25, seed=4)
        b = synthetic_frames(500, eye_bin=40, seed=5)
        det = RealTimeBlinkDetector(25.0)
        for f in np.concatenate([a, b]):
            status = det.process_frame(f)
        assert abs(det.selected_bin - 40) <= 6

    def test_last_selection_diagnostics(self):
        frames = synthetic_frames(200)
        det = RealTimeBlinkDetector(25.0)
        for f in frames:
            det.process_frame(f)
        sel = det.last_selection
        assert sel is not None
        assert sel.variance.shape == (110,)
        assert sel.bin_index in sel.candidate_bins or not sel.candidate_bins


class TestDiscontinuityPlumbing:
    def test_refits_marked_to_levd(self):
        frames = synthetic_frames(300)
        det = RealTimeBlinkDetector(25.0)
        for f in frames:
            det.process_frame(f)
        # Refits happen every viewpos_update_interval frames in steady
        # state; the LEVD must have seen discontinuity marks.
        assert len(det.levd._discontinuities) > 0


class TestRestartBookkeeping:
    def test_restart_resets_cold_start(self):
        frames = synthetic_frames(300)
        det = RealTimeBlinkDetector(25.0)
        for f in frames:
            det.process_frame(f)
        det._restart()
        status = det.process_frame(frames[0])
        assert status.selected_bin == -1  # back in cold start
        assert np.isnan(status.relative_distance)
        assert det.restart_frames  # recorded

    def test_events_survive_restart(self):
        frames = synthetic_frames(300)
        det = RealTimeBlinkDetector(25.0)
        for f in frames:
            det.process_frame(f)
        before = list(det.events)
        det._restart()
        assert det.events == before

"""Tests for repro.core.levd."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.levd import (
    BlinkDetection,
    LevdConfig,
    LocalExtremeValueDetector,
    detect_blinks,
)


def bumpy_signal(bump_times_s, fps=25.0, duration_s=30.0, amplitude=1.0,
                 width_s=0.25, noise=0.02, seed=0):
    """Quiet noise plus Gaussian bumps — a synthetic r(k)."""
    rng = np.random.default_rng(seed)
    t = np.arange(int(duration_s * fps)) / fps
    x = noise * rng.normal(size=len(t))
    for bt in bump_times_s:
        x += amplitude * np.exp(-((t - bt) ** 2) / (2 * (width_s / 3) ** 2))
    return x


class TestConfig:
    def test_paper_threshold(self):
        assert LevdConfig().threshold_sigmas == 5.0

    @pytest.mark.parametrize("kwargs", [
        {"threshold_sigmas": 0}, {"sigma_window_s": 0}, {"detrend_window_s": 0},
        {"sigma_quantile": 1.0}, {"refractory_s": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LevdConfig(**kwargs)


class TestOfflineDetection:
    def test_detects_clear_bumps(self):
        truth = [5.0, 12.0, 20.0, 26.0]
        events = detect_blinks(bumpy_signal(truth), 25.0)
        for t in truth:
            assert any(abs(e.time_s - t) < 0.4 for e in events)
        extras = [e for e in events if all(abs(e.time_s - t) >= 0.4 for t in truth)]
        assert len(extras) <= 1  # 5σ keeps false alarms rare, not zero

    def test_no_events_on_pure_noise(self):
        x = np.random.default_rng(1).normal(size=1000) * 0.02
        events = detect_blinks(x, 25.0)
        assert len(events) <= 2  # 5σ keeps false alarms rare

    def test_downward_dips_detected_too(self):
        # A blink can dip r as well as bump it.
        truth = [8.0, 16.0]
        x = -bumpy_signal(truth, noise=0.02, seed=2)
        events = detect_blinks(x, 25.0)
        assert len(events) == 2

    def test_threshold_scales_with_noise(self):
        # The same bump must vanish when the noise grows to bump scale
        # (the adaptive 5σ behaviour): nothing may fire at the bump time.
        quiet = bumpy_signal([10.0], noise=0.02, seed=3)
        loud = bumpy_signal([10.0], amplitude=0.3, noise=0.4, seed=3)
        assert any(abs(e.time_s - 10.0) < 0.5 for e in detect_blinks(quiet, 25.0))
        assert not any(abs(e.time_s - 10.0) < 0.5 for e in detect_blinks(loud, 25.0))

    def test_prominence_reported(self):
        events = detect_blinks(bumpy_signal([10.0], amplitude=2.0), 25.0)
        assert events and events[0].prominence > 1.0

    def test_close_bumps_merge(self):
        # Two bumps inside the merge window count once.
        x = bumpy_signal([10.0, 10.2], width_s=0.15)
        events = detect_blinks(x, 25.0)
        near = [e for e in events if 9.5 < e.time_s < 10.7]
        assert len(near) == 1

    def test_slow_drift_ignored(self):
        t = np.arange(1000) / 25.0
        x = 0.5 * np.sin(2 * np.pi * 0.02 * t) + 0.01 * np.random.default_rng(4).normal(size=1000)
        events = detect_blinks(x, 25.0)
        assert len(events) == 0


class TestStreaming:
    def test_streaming_matches_offline(self):
        x = bumpy_signal([5.0, 13.0, 21.0], seed=5)
        offline = detect_blinks(x, 25.0)
        det = LocalExtremeValueDetector(25.0)
        streamed = [e for v in x if (e := det.push(float(v))) is not None]
        tail = det.finish()
        if tail:
            streamed.append(tail)
        assert [e.frame_index for e in streamed] == [e.frame_index for e in offline]

    def test_reset_clears_state(self):
        det = LocalExtremeValueDetector(25.0)
        for v in bumpy_signal([5.0]):
            det.push(float(v))
        det.reset()
        assert det.sigma == 0.0
        assert det.index == -1

    def test_sigma_estimate_reasonable(self):
        det = LocalExtremeValueDetector(25.0)
        rng = np.random.default_rng(6)
        for _ in range(500):
            det.push(float(rng.normal(0, 0.1)))
        assert det.sigma == pytest.approx(0.1, rel=0.3)

    def test_sigma_robust_to_sparse_bumps(self):
        det = LocalExtremeValueDetector(25.0)
        x = bumpy_signal([3.0, 7.0], duration_s=10.0, amplitude=5.0, noise=0.1, seed=7)
        for v in x:
            det.push(float(v))
        assert det.sigma < 0.5  # bumps excluded from the "without blinking" σ

    def test_seed_sigma(self):
        det = LocalExtremeValueDetector(25.0)
        det.seed_sigma(np.random.default_rng(8).normal(0, 0.2, 300))
        assert det.sigma == pytest.approx(0.2, rel=0.35)

    def test_discontinuity_suppression(self):
        # A step injected by a centre refit must NOT fire when marked.
        x = np.concatenate([np.zeros(200), np.full(200, 1.0)])
        x += 0.01 * np.random.default_rng(9).normal(size=400)
        det = LocalExtremeValueDetector(25.0)
        events = []
        for i, v in enumerate(x):
            if i == 200:
                det.mark_discontinuity()
            e = det.push(float(v))
            if e:
                events.append(e)
        if det.finish():
            events.append(det.finish())
        near_step = [e for e in events if abs(e.frame_index - 200) < 10]
        assert not near_step

    def test_unmarked_step_fires(self):
        x = np.concatenate([np.zeros(200), np.full(200, 1.0)])
        x += 0.01 * np.random.default_rng(10).normal(size=400)
        det = LocalExtremeValueDetector(25.0)
        events = [e for v in x if (e := det.push(float(v)))]
        assert any(abs(e.frame_index - 200) < 10 for e in events)

    def test_baseline_property(self):
        det = LocalExtremeValueDetector(25.0)
        assert det.baseline is None
        for v in (1.0, 2.0, 3.0):
            det.push(v)
        assert det.baseline == pytest.approx(2.0)

    def test_is_outlier(self):
        det = LocalExtremeValueDetector(25.0)
        det.seed_sigma(np.random.default_rng(11).normal(1.0, 0.01, 300))
        assert det.is_outlier(2.0)
        assert not det.is_outlier(1.005)

    def test_refractory(self):
        cfg = LevdConfig(refractory_s=2.0)
        x = bumpy_signal([10.0, 11.0], width_s=0.2, seed=12)
        events = detect_blinks(x, 25.0, cfg)
        assert len(events) == 1

    def test_frame_rate_validation(self):
        with pytest.raises(ValueError):
            LocalExtremeValueDetector(0.0)


class TestPropertyBased:
    @given(amplitude=st.floats(0.5, 10.0), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_single_bump_always_detected(self, amplitude, seed):
        x = bumpy_signal([12.0], amplitude=amplitude, noise=0.02, seed=seed)
        events = detect_blinks(x, 25.0)
        assert any(abs(e.time_s - 12.0) < 0.5 for e in events)

    @given(scale=st.floats(1e-6, 1e3))
    @settings(max_examples=20, deadline=None)
    def test_scale_invariance(self, scale):
        # Detection must not depend on the absolute units of r(k): the
        # scaled signal must produce the identical event set.
        base = bumpy_signal([10.0, 20.0], seed=13)
        reference = [e.frame_index for e in detect_blinks(base, 25.0)]
        scaled = [e.frame_index for e in detect_blinks(base * scale, 25.0)]
        assert scaled == reference

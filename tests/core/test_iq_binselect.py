"""Tests for repro.core.iqspace and repro.core.binselect."""

import numpy as np
import pytest

from repro.core.binselect import find_clusters, select_eye_bin, variance_profile
from repro.core.iqspace import (
    amplitude_series,
    displacement_from_phase,
    dynamic_component,
    phase_series,
    trajectory_variance,
)
from repro.core.preprocess import Preprocessor, PreprocessorConfig
from repro.rf.constants import phase_change


class TestIqSpace:
    def test_amplitude_and_phase(self):
        samples = 2.0 * np.exp(1j * np.linspace(0, 1, 10))
        assert np.allclose(amplitude_series(samples), 2.0)
        assert np.allclose(np.diff(phase_series(samples)), 1 / 9, atol=1e-9)

    def test_phase_unwrap(self):
        angles = np.linspace(0, 6 * np.pi, 100)  # three turns
        phase = phase_series(np.exp(1j * angles))
        assert phase[-1] - phase[0] == pytest.approx(6 * np.pi, rel=1e-6)

    def test_dynamic_component_default_static(self):
        samples = (5 + 5j) + np.exp(1j * np.linspace(0, 2 * np.pi, 100, endpoint=False))
        dyn = dynamic_component(samples)
        assert np.abs(np.mean(dyn)) < 1e-9
        assert np.abs(dyn).mean() == pytest.approx(1.0, rel=0.01)

    def test_dynamic_component_explicit_static(self):
        samples = np.array([3 + 4j, 3 + 5j])
        dyn = dynamic_component(samples, static=3 + 4j)
        assert dyn[0] == 0

    def test_displacement_from_phase_inverts_eq9(self):
        d_true = np.linspace(0, 2e-3, 50)
        phase = phase_change(7.3e9, d_true)
        recovered = displacement_from_phase(phase, 7.3e9)
        assert np.allclose(recovered, d_true, atol=1e-9)

    def test_displacement_rejects_bad_carrier(self):
        with pytest.raises(ValueError):
            displacement_from_phase(np.zeros(3), 0.0)

    def test_trajectory_variance_rotation_vs_amplitude(self):
        # 2-D variance sees rotation that 1-D amplitude variance misses —
        # the core argument of Sec. IV-D.
        rotation = 1.0 * np.exp(1j * np.linspace(0, 1.0, 200))
        var_2d = trajectory_variance(rotation)
        var_amp = np.var(np.abs(rotation))
        assert var_2d > 100 * var_amp


class TestVarianceProfile:
    def test_shape_and_positive(self, lab_trace):
        prof = variance_profile(lab_trace.frames[:100])
        assert prof.shape == (lab_trace.n_bins,)
        assert np.all(prof >= 0)

    def test_needs_two_frames(self):
        with pytest.raises(ValueError):
            variance_profile(np.ones((1, 10), dtype=complex))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            variance_profile(np.ones(10))


class TestFindClusters:
    def test_simple_clusters(self):
        v = np.array([0, 0, 5, 6, 0, 0, 9, 0], dtype=float)
        assert find_clusters(v, noise_floor=0.5, threshold_factor=2.0) == [(2, 4), (6, 7)]

    def test_cluster_at_end(self):
        v = np.array([0, 0, 5, 5], dtype=float)
        assert find_clusters(v, 0.5, 2.0) == [(2, 4)]

    def test_negative_floor_rejected(self):
        with pytest.raises(ValueError):
            find_clusters(np.ones(4), -1.0)


class TestSelectEyeBin:
    @pytest.fixture()
    def processed(self, lab_trace):
        pre = Preprocessor(PreprocessorConfig(subtract_background=False))
        return pre.apply(lab_trace.frames), lab_trace.eye_bin

    def test_nearest_peak_finds_eye(self, processed):
        frames, eye_bin = processed
        sel = select_eye_bin(frames[:175])
        assert abs(sel.bin_index - eye_bin) <= 6

    def test_max_variance_finds_torso_instead(self, processed):
        # The ablation: the global variance max is the breathing torso,
        # several resolution cells beyond the eyes.
        frames, eye_bin = processed
        sel = select_eye_bin(frames[:175], strategy="max_variance")
        assert sel.bin_index > eye_bin + 20

    def test_max_amplitude_finds_clutter(self, processed):
        # The paper's "naive approach": the strongest return is the direct
        # leakage / cabin clutter, nowhere near the eye.
        frames, eye_bin = processed
        sel = select_eye_bin(frames[:175], strategy="max_amplitude")
        assert abs(sel.bin_index - eye_bin) > 10

    def test_candidates_ordered_nearest_first(self, processed):
        frames, _ = processed
        sel = select_eye_bin(frames[:175])
        assert list(sel.candidate_bins) == sorted(sel.candidate_bins)

    def test_unknown_strategy(self, processed):
        frames, _ = processed
        with pytest.raises(ValueError):
            select_eye_bin(frames[:175], strategy="psychic")

    def test_fallback_when_nothing_clears_threshold(self, rng):
        # Pure noise: no dynamic cluster, but a bin must still be returned.
        frames = (rng.normal(size=(100, 64)) + 1j * rng.normal(size=(100, 64))) * 1e-7
        sel = select_eye_bin(frames)
        assert 0 <= sel.bin_index < 64

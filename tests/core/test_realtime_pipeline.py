"""Tests for repro.core.realtime and repro.core.pipeline on simulated traces."""

import numpy as np
import pytest

from repro.core.pipeline import BlinkRadar
from repro.core.realtime import RealTimeBlinkDetector, RealTimeConfig
from repro.eval.metrics import score_blink_detection


class TestRealTimeConfig:
    def test_paper_cold_start(self):
        cfg = RealTimeConfig()
        assert cfg.cold_start_frames == 50  # 2 s at 25 FPS
        assert cfg.viewpos_method == "pratt"

    def test_validation(self):
        with pytest.raises(ValueError):
            RealTimeConfig(cold_start_frames=10, viewpos_min_samples=50)
        with pytest.raises(ValueError):
            RealTimeConfig(restart_factor=1.0)


class TestColdStart:
    def test_no_output_during_cold_start(self, lab_trace):
        det = RealTimeBlinkDetector(25.0)
        for k in range(49):
            status = det.process_frame(lab_trace.frames[k])
            assert np.isnan(status.relative_distance)
            assert status.selected_bin == -1
        status = det.process_frame(lab_trace.frames[50])
        assert status.selected_bin >= 0

    def test_cold_start_duration_is_2s(self, lab_trace):
        det = RealTimeBlinkDetector(25.0)
        first_valid = None
        for k in range(100):
            status = det.process_frame(lab_trace.frames[k])
            if not np.isnan(status.relative_distance):
                first_valid = k
                break
        assert first_valid is not None and first_valid <= 55


class TestDetection:
    def test_lab_accuracy(self, lab_trace):
        result = BlinkRadar(25.0).detect(lab_trace.frames)
        score = score_blink_detection(lab_trace.blink_times_s, result.event_times_s)
        assert score.accuracy >= 0.75
        assert score.false_alarms <= 6

    def test_road_accuracy(self, road_trace):
        result = BlinkRadar(25.0).detect(road_trace.frames)
        score = score_blink_detection(road_trace.blink_times_s, result.event_times_s)
        assert score.accuracy >= 0.7

    def test_drowsy_accuracy(self, drowsy_trace):
        result = BlinkRadar(25.0).detect(drowsy_trace.frames)
        score = score_blink_detection(drowsy_trace.blink_times_s, result.event_times_s)
        assert score.accuracy >= 0.7

    def test_selected_bin_near_eye(self, lab_trace):
        result = BlinkRadar(25.0).detect(lab_trace.frames)
        used = result.selected_bins[result.selected_bins >= 0]
        assert abs(np.median(used) - lab_trace.eye_bin) <= 8

    def test_streaming_equals_offline(self, lab_trace):
        offline = BlinkRadar(25.0).detect(lab_trace.frames)
        stream = BlinkRadar(25.0)
        for frame in lab_trace.frames:
            stream.process_frame(frame)
        stream_times = [e.time_s for e in stream.stream_events]
        # The offline path may hold one trailing pending event that only a
        # finish() flushes.
        offline_times = [e.time_s for e in offline.events]
        assert stream_times == offline_times or stream_times == offline_times[:-1]

    def test_result_metadata(self, lab_trace):
        result = BlinkRadar(25.0).detect(lab_trace.frames)
        assert result.n_frames == lab_trace.n_frames
        assert result.duration_s == pytest.approx(lab_trace.duration_s)
        assert result.blink_rate_per_min() > 5


class TestRestart:
    def test_restart_on_large_body_movement(self, lab_trace):
        # Splice two halves with a 4 cm body shift between them: the
        # detector must restart rather than keep the stale viewing position.
        from repro.sim import Scenario, simulate
        from repro.physio import ParticipantProfile
        from repro.rf.geometry import SensorPose

        sc_near = Scenario(
            participant=ParticipantProfile("R"), duration_s=20.0,
            pose=SensorPose(distance_m=0.40), allow_posture_shifts=False,
        )
        sc_far = Scenario(
            participant=ParticipantProfile("R"), duration_s=20.0,
            pose=SensorPose(distance_m=0.44), allow_posture_shifts=False,
        )
        frames = np.concatenate(
            [simulate(sc_near, seed=9).frames, simulate(sc_far, seed=10).frames]
        )
        result = BlinkRadar(25.0).detect(frames)
        assert any(19.0 < t < 32.0 for t in result.restart_times_s)

    def test_no_restart_when_parked_still(self, lab_trace):
        result = BlinkRadar(25.0).detect(lab_trace.frames)
        assert len(result.restart_times_s) == 0


class TestInputValidation:
    def test_detect_rejects_1d(self):
        with pytest.raises(ValueError):
            BlinkRadar(25.0).detect(np.ones(100))

    def test_process_frame_rejects_2d(self):
        det = RealTimeBlinkDetector(25.0)
        with pytest.raises(ValueError):
            det.process_frame(np.ones((2, 10)))

    def test_bad_frame_rate(self):
        with pytest.raises(ValueError):
            RealTimeBlinkDetector(0.0)

    def test_reset_stream(self, lab_trace):
        radar = BlinkRadar(25.0)
        radar.process_frame(lab_trace.frames[0])
        radar.reset_stream()
        assert radar.stream_events == []

"""Tests for repro.core.analytics (blink durations, window metrics,
dual-feature drowsiness)."""

import numpy as np
import pytest

from repro.core.analytics import (
    BlinkWindowMetrics,
    DualFeatureClassifier,
    estimate_blink_durations,
    window_metrics,
)
from repro.core.levd import BlinkDetection
from repro.core.pipeline import BlinkRadar


def make_r_with_dips(dips, n=2000, fps=25.0, depth=1.0, width_s=0.3, base=5.0):
    t = np.arange(n) / fps
    r = np.full(n, base)
    for d in dips:
        r -= depth * np.exp(-((t - d) ** 2) / (2 * (width_s / 3) ** 2))
    return r


def events_at(times, fps=25.0):
    return [BlinkDetection(int(t * fps), t, 1.0) for t in times]


class TestDurationEstimation:
    def test_width_tracks_blink_width(self):
        for width in (0.2, 0.4, 0.8):
            r = make_r_with_dips([20.0], width_s=width)
            d = estimate_blink_durations(r, events_at([20.0]), 25.0)
            assert d[0] == pytest.approx(width, rel=0.5)

    def test_wider_blink_longer_duration(self):
        d_short = estimate_blink_durations(
            make_r_with_dips([20.0], width_s=0.25), events_at([20.0]), 25.0
        )[0]
        d_long = estimate_blink_durations(
            make_r_with_dips([20.0], width_s=0.7), events_at([20.0]), 25.0
        )[0]
        assert d_long > 1.5 * d_short

    def test_nan_for_invalid_apex(self):
        r = make_r_with_dips([20.0])
        r[100:110] = np.nan
        d = estimate_blink_durations(r, [BlinkDetection(105, 4.2, 1.0)], 25.0)
        assert np.isnan(d[0])

    def test_event_outside_signal(self):
        r = make_r_with_dips([20.0])
        d = estimate_blink_durations(r, [BlinkDetection(10**6, 4e4, 1.0)], 25.0)
        assert np.isnan(d[0])

    def test_upward_bumps_work_too(self):
        r = 10.0 - make_r_with_dips([20.0])  # inverted: bump instead of dip
        d = estimate_blink_durations(r, events_at([20.0]), 25.0)
        assert np.isfinite(d[0])

    def test_capped_by_max_duration(self):
        # The walk is bounded to max_duration_s on each side of the apex.
        r = make_r_with_dips([20.0], width_s=5.0)
        d = estimate_blink_durations(r, events_at([20.0]), 25.0, max_duration_s=1.0)
        assert d[0] <= 2.0 + 2 / 25.0

    def test_bad_frame_rate(self):
        with pytest.raises(ValueError):
            estimate_blink_durations(np.ones(10), [], 0.0)

    def test_on_real_pipeline_contrast(self, lab_trace, drowsy_trace):
        """Estimated durations must separate awake from drowsy captures."""
        means = {}
        for name, trace in (("awake", lab_trace), ("drowsy", drowsy_trace)):
            result = BlinkRadar(25.0).detect(trace.frames)
            durs = estimate_blink_durations(
                result.relative_distance, result.events, 25.0
            )
            means[name] = np.nanmean(durs)
        assert means["drowsy"] > 1.5 * means["awake"]


class TestWindowMetrics:
    def test_counts_and_rate(self):
        events = events_at([10.0, 20.0, 70.0])
        durs = np.array([0.3, 0.3, 0.3])
        m = window_metrics(events, durs, 0.0, 60.0)
        assert m.rate_per_min == pytest.approx(2.0)
        assert m.mean_duration_s == pytest.approx(0.3)
        assert m.closure_fraction == pytest.approx(0.6 / 60.0)

    def test_empty_window(self):
        m = window_metrics([], np.array([]), 0.0, 60.0)
        assert m.rate_per_min == 0.0
        assert np.isnan(m.mean_duration_s)
        assert m.closure_fraction == 0.0

    def test_nan_durations_excluded_from_mean(self):
        events = events_at([10.0, 20.0])
        m = window_metrics(events, np.array([0.4, np.nan]), 0.0, 60.0)
        assert m.rate_per_min == pytest.approx(2.0)
        assert m.mean_duration_s == pytest.approx(0.4)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            window_metrics(events_at([1.0]), np.array([]), 0.0, 60.0)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            window_metrics([], np.array([]), 0.0, 0.0)


class TestDualFeatureClassifier:
    def calibrated(self):
        rng = np.random.default_rng(0)
        awake = np.column_stack([rng.normal(19, 3, 30), rng.normal(0.22, 0.04, 30)])
        drowsy = np.column_stack([rng.normal(26, 3, 30), rng.normal(0.6, 0.08, 30)])
        return DualFeatureClassifier().fit(awake, drowsy)

    def test_duration_disambiguates_overlapping_rates(self):
        clf = self.calibrated()
        # Rate 22 is ambiguous; duration decides.
        assert clf.classify(22.0, 0.2) == "awake"
        assert clf.classify(22.0, 0.65) == "drowsy"

    def test_rate_only_fallback_on_nan_duration(self):
        clf = self.calibrated()
        assert clf.classify(15.0, float("nan")) == "awake"
        assert clf.classify(30.0, float("nan")) == "drowsy"

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            DualFeatureClassifier().classify(20.0, 0.3)

    def test_nan_rows_dropped_in_fit(self):
        awake = np.array([[19.0, 0.2], [20.0, np.nan], [18.0, 0.25]])
        drowsy = np.array([[26.0, 0.6], [27.0, 0.62]])
        clf = DualFeatureClassifier().fit(awake, drowsy)
        assert clf.trained

    def test_all_nan_calibration_rejected(self):
        bad = np.array([[np.nan, np.nan]])
        with pytest.raises(ValueError):
            DualFeatureClassifier().fit(bad, bad)

    def test_nonfinite_rate_rejected(self):
        clf = self.calibrated()
        with pytest.raises(ValueError):
            clf.classify(float("nan"), 0.3)


class TestPerclosClassifier:
    def test_threshold_between_classes(self):
        from repro.core.analytics import PerclosClassifier
        import numpy as np

        clf = PerclosClassifier().fit(np.array([0.05, 0.08]), np.array([0.25, 0.3]))
        assert 0.08 < clf.threshold < 0.25
        assert clf.classify(0.05) == "awake"
        assert clf.classify(0.3) == "drowsy"

    def test_untrained_raises(self):
        from repro.core.analytics import PerclosClassifier
        import pytest

        with pytest.raises(RuntimeError):
            PerclosClassifier().classify(0.1)

    def test_nan_calibration_rejected(self):
        from repro.core.analytics import PerclosClassifier
        import numpy as np
        import pytest

        with pytest.raises(ValueError):
            PerclosClassifier().fit(np.array([np.nan]), np.array([0.3]))

    def test_nonfinite_query_rejected(self):
        from repro.core.analytics import PerclosClassifier
        import numpy as np
        import pytest

        clf = PerclosClassifier().fit(np.array([0.05]), np.array([0.3]))
        with pytest.raises(ValueError):
            clf.classify(float("nan"))

    def test_separates_states_on_pipeline_output(self, lab_trace, drowsy_trace):
        """Closure fraction from real detections separates awake/drowsy."""
        import numpy as np
        from repro.core.analytics import (
            PerclosClassifier, estimate_blink_durations, window_metrics,
        )
        from repro.core.pipeline import BlinkRadar

        closures = {}
        for name, trace in (("awake", lab_trace), ("drowsy", drowsy_trace)):
            result = BlinkRadar(25.0).detect(trace.frames)
            durs = estimate_blink_durations(result.relative_distance, result.events, 25.0)
            m = window_metrics(result.events, durs, 0.0, trace.duration_s)
            closures[name] = m.closure_fraction
        assert closures["drowsy"] > 2 * closures["awake"]
        clf = PerclosClassifier().fit(
            np.array([closures["awake"]]), np.array([closures["drowsy"]])
        )
        assert clf.classify(closures["awake"]) == "awake"
        assert clf.classify(closures["drowsy"]) == "drowsy"

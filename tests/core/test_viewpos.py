"""Tests for repro.core.viewpos."""

import numpy as np
import pytest

from repro.core.viewpos import ViewingPositionTracker


def arc_samples(center, radius, n, span=1.2, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    phases = np.linspace(0, span, n)
    pts = center + radius * np.exp(1j * phases)
    if noise:
        pts = pts + noise * (rng.normal(size=n) + 1j * rng.normal(size=n))
    return pts


class TestColdStart:
    def test_none_before_min_samples(self):
        tracker = ViewingPositionTracker(min_samples=50)
        for i, s in enumerate(arc_samples(1 + 1j, 0.5, 49)):
            assert tracker.push(s) is None
        assert not tracker.ready

    def test_ready_at_min_samples(self):
        tracker = ViewingPositionTracker(min_samples=50)
        samples = arc_samples(1 + 1j, 0.5, 50)
        results = [tracker.push(s) for s in samples]
        assert results[-1] is not None
        assert tracker.ready

    def test_first_center_close(self):
        tracker = ViewingPositionTracker(min_samples=50)
        for s in arc_samples(2 - 1j, 0.3, 50, noise=1e-3):
            tracker.push(s)
        assert abs(tracker.center - (2 - 1j)) < 0.05


class TestRelativeDistance:
    def test_on_arc_r_equals_radius(self):
        tracker = ViewingPositionTracker(min_samples=50)
        rs = [tracker.push(s) for s in arc_samples(0, 1.0, 200, noise=1e-4)]
        late = np.array(rs[100:])
        assert np.allclose(late, 1.0, atol=0.01)

    def test_radial_step_changes_r(self):
        tracker = ViewingPositionTracker(min_samples=50, update_interval=10**6)
        for s in arc_samples(0, 1.0, 100):
            tracker.push(s)
        r_blink = tracker.push(complex(0.5 * np.exp(1j * 1.2)))  # amplitude dip
        assert r_blink == pytest.approx(0.5, abs=0.05)

    def test_batch_relative_distance(self):
        tracker = ViewingPositionTracker(min_samples=50)
        for s in arc_samples(0, 1.0, 60):
            tracker.push(s)
        rs = tracker.relative_distance(np.array([2.0 + 0j]))
        assert rs[0] == pytest.approx(2.0, abs=0.05)

    def test_batch_requires_fit(self):
        with pytest.raises(RuntimeError):
            ViewingPositionTracker().relative_distance(np.array([1 + 1j]))


class TestRefitting:
    def test_refit_flag(self):
        tracker = ViewingPositionTracker(min_samples=10, update_interval=5)
        flags = []
        for s in arc_samples(0, 1.0, 30):
            tracker.push(s)
            flags.append(tracker.refitted)
        assert sum(flags) >= 3  # initial + periodic refits

    def test_blending_tracks_slow_drift(self):
        tracker = ViewingPositionTracker(min_samples=30, update_interval=10, blend=0.5)
        # Arc centre drifts from 0 to 0.3 over time.
        for k in range(400):
            drift = 0.3 * min(k / 200, 1.0)
            s = drift + np.exp(1j * (0.8 * np.sin(2 * np.pi * k / 100)))
            tracker.push(complex(s))
        assert abs(tracker.center - 0.3) < 0.1

    def test_reset(self):
        tracker = ViewingPositionTracker(min_samples=10)
        for s in arc_samples(0, 1.0, 20):
            tracker.push(s)
        tracker.reset()
        assert not tracker.ready and tracker.center is None

    def test_exclude_from_fit(self):
        tracker = ViewingPositionTracker(min_samples=20, update_interval=1)
        for s in arc_samples(0, 1.0, 40, noise=1e-3):
            tracker.push(s)
        center_before = tracker.center
        # A burst of excluded outliers must not pull the centre toward
        # them (refits on the unchanged buffer may still settle slightly).
        for _ in range(20):
            tracker.push(5 + 5j, exclude_from_fit=True)
        assert abs(tracker.center - center_before) < 0.01


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError):
            ViewingPositionTracker(window=2)

    def test_bad_min_samples(self):
        with pytest.raises(ValueError):
            ViewingPositionTracker(window=100, min_samples=200)

    def test_bad_method(self):
        with pytest.raises(ValueError):
            ViewingPositionTracker(method="lsq")

    def test_bad_blend(self):
        with pytest.raises(ValueError):
            ViewingPositionTracker(blend=0.0)

    @pytest.mark.parametrize("method", ["pratt", "kasa", "taubin"])
    def test_all_methods_work(self, method):
        tracker = ViewingPositionTracker(min_samples=50, method=method)
        for s in arc_samples(1 + 1j, 0.5, 80, noise=1e-3):
            tracker.push(s)
        assert abs(tracker.center - (1 + 1j)) < 0.1

"""Tests for repro.core.preprocess (paper Sec. IV-B)."""

import numpy as np
import pytest

from repro.core.preprocess import Preprocessor, PreprocessorConfig


class TestConfig:
    def test_paper_fir_parameters(self):
        cfg = PreprocessorConfig()
        assert cfg.fir_order == 26  # order-26 Hamming FIR per the paper

    def test_validation(self):
        with pytest.raises(ValueError):
            PreprocessorConfig(slow_time_window=0)


class TestNoiseReduction:
    def test_snr_improves(self, rng):
        # Fig. 7: a pulse buried in noise must come out cleaner.
        n_bins = 234
        envelope = np.exp(-((np.arange(n_bins) - 80.0) ** 2) / (2 * 8.0**2))
        clean = envelope * 1e-4
        noisy = clean + 5e-5 * rng.normal(size=n_bins)
        out = Preprocessor().denoise_frame(noisy)
        err_before = np.linalg.norm(noisy - clean)
        # Compare against the equally-smoothed clean envelope (smoothing
        # broadens the pulse; what matters is noise suppression).
        ref = Preprocessor().denoise_frame(clean)
        err_after = np.linalg.norm(out - ref)
        assert err_after < 0.4 * err_before

    def test_denoise_preserves_path_phase(self):
        n_bins = 234
        envelope = np.exp(-((np.arange(n_bins) - 80.0) ** 2) / (2 * 8.0**2))
        frame = envelope * np.exp(1j * 1.234) * 1e-4
        out = Preprocessor().denoise_frame(frame)
        peak = np.argmax(np.abs(out))
        assert np.angle(out[peak]) == pytest.approx(1.234, abs=1e-6)

    def test_denoise_rejects_matrix(self):
        with pytest.raises(ValueError):
            Preprocessor().denoise_frame(np.ones((2, 10)))


class TestBackgroundSubtraction:
    def test_static_reflector_removed(self, rng):
        static = np.exp(-((np.arange(234) - 50.0) ** 2) / 128.0) * 1e-3
        frames = np.tile(static, (100, 1)).astype(complex)
        out = Preprocessor().apply(frames)
        assert np.abs(out[-1]).max() < 1e-2 * np.abs(static).max()

    def test_moving_reflector_survives(self):
        # A reflector with oscillating amplitude must keep its dynamics.
        n = 200
        envelope = np.exp(-((np.arange(234) - 80.0) ** 2) / 128.0)
        motion = 1 + 0.5 * np.sin(2 * np.pi * 0.25 * np.arange(n) / 25.0)
        frames = motion[:, None] * envelope[None, :] * 1e-4 + 0j
        out = Preprocessor().apply(frames)
        dyn = np.abs(out[100:, 80])
        assert dyn.max() > 1e-5

    def test_subtraction_can_be_disabled(self):
        frames = np.ones((10, 16), dtype=complex)
        out = Preprocessor(PreprocessorConfig(subtract_background=False)).apply(frames)
        assert np.abs(out[-1]).max() > 0.5  # statics retained


class TestStreamingEquivalence:
    def test_push_matches_apply(self, rng):
        frames = (rng.normal(size=(60, 64)) + 1j * rng.normal(size=(60, 64))) * 1e-4
        offline = Preprocessor().apply(frames)
        stream = Preprocessor()
        streamed = np.stack([stream.push(f) for f in frames])
        assert np.allclose(offline, streamed)

    def test_push_matches_apply_without_subtraction(self, rng):
        frames = (rng.normal(size=(40, 32)) + 1j * rng.normal(size=(40, 32))) * 1e-4
        cfg = PreprocessorConfig(subtract_background=False)
        offline = Preprocessor(cfg).apply(frames)
        stream = Preprocessor(cfg)
        streamed = np.stack([stream.push(f) for f in frames])
        assert np.allclose(offline, streamed)

    def test_reset_clears_state(self, rng):
        frames = (rng.normal(size=(10, 16)) + 0j) * 1e-4
        pre = Preprocessor()
        pre.apply(frames)
        pre.reset()
        assert pre.background is None

    def test_apply_rejects_1d(self):
        with pytest.raises(ValueError):
            Preprocessor().apply(np.ones(10))

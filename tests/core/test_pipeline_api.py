"""API-contract tests of the public BlinkRadar façade."""

import numpy as np
import pytest

from repro.core.analytics import DualFeatureClassifier
from repro.core.drowsy import BlinkRateClassifier
from repro.core.pipeline import BlinkRadar


class TestTrainDrowsinessApi:
    def test_default_returns_dual(self, lab_trace, drowsy_trace):
        radar = BlinkRadar(25.0)
        clf = radar.train_drowsiness([lab_trace.frames], [drowsy_trace.frames],
                                     window_s=40.0)
        assert isinstance(clf, DualFeatureClassifier)

    def test_rate_returns_rate_model(self, lab_trace, drowsy_trace):
        radar = BlinkRadar(25.0)
        clf = radar.train_drowsiness([lab_trace.frames], [drowsy_trace.frames],
                                     window_s=40.0, features="rate")
        assert isinstance(clf, BlinkRateClassifier)

    def test_unknown_features_rejected(self, lab_trace, drowsy_trace):
        radar = BlinkRadar(25.0)
        with pytest.raises(ValueError):
            radar.train_drowsiness([lab_trace.frames], [drowsy_trace.frames],
                                   features="gaze")

    def test_detect_drowsiness_accepts_both(self, lab_trace, drowsy_trace):
        radar = BlinkRadar(25.0)
        for features in ("rate", "rate+duration"):
            clf = radar.train_drowsiness(
                [lab_trace.frames], [drowsy_trace.frames],
                window_s=40.0, features=features,
            )
            verdicts = radar.detect_drowsiness(drowsy_trace.frames, clf,
                                               window_s=40.0)
            assert verdicts and all(v in ("awake", "drowsy") for v in verdicts)


class TestResultApi:
    def test_rate_windows(self, lab_trace):
        result = BlinkRadar(25.0).detect(lab_trace.frames)
        rates = result.rate_windows(window_s=20.0)
        assert len(rates) == 2  # 40 s capture → two 20 s windows
        assert np.all(rates >= 0)

    def test_duration_property(self, lab_trace):
        result = BlinkRadar(25.0).detect(lab_trace.frames)
        assert result.duration_s == pytest.approx(lab_trace.duration_s)

    def test_empty_capture_rate(self):
        radar = BlinkRadar(25.0)
        with pytest.raises(ValueError):
            radar.detect(np.ones(10))

"""Exact-equality gate: the batched pipeline vs frozen scalar-path goldens.

``tests/golden/pipeline_golden_*.npz`` were captured from the
pre-batching per-frame implementation (see tools/capture_golden_traces.py).
These tests re-materialise each realisation — the simulated ones through
the store catalog, recording and replaying a ``.rst`` trace; the
synthetic restart scene from its generator — verify the frame matrix
digest matches the one frozen in the artifact, and then require the
current pipeline to reproduce every output **bit for bit**: the r(k)
waveform, the selected-bin series, restart times, event indices/times/
prominences, and the session score. Any single-bit drift in the fused
kernels fails here first.
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.core.batched import BatchedPipeline
from repro.core.pipeline import BlinkRadar
from repro.eval.metrics import score_blink_detection

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

_spec = importlib.util.spec_from_file_location(
    "capture_golden_traces", REPO_ROOT / "tools" / "capture_golden_traces.py"
)
goldens = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(goldens)


@pytest.fixture(scope="module")
def catalog(tmp_path_factory):
    from repro.store import Catalog

    return Catalog(tmp_path_factory.mktemp("golden-traces"))


def load_golden(name: str):
    path = GOLDEN_DIR / f"pipeline_golden_{name}.npz"
    return np.load(path, allow_pickle=False)


def assert_detection_matches(detection, golden) -> None:
    np.testing.assert_array_equal(
        detection.relative_distance, golden["relative_distance"]
    )
    np.testing.assert_array_equal(detection.selected_bins, golden["selected_bins"])
    np.testing.assert_array_equal(
        np.array(detection.restart_times_s, dtype=float), golden["restart_times_s"]
    )
    np.testing.assert_array_equal(
        np.array([e.frame_index for e in detection.events], dtype=int),
        golden["event_frame_indices"],
    )
    np.testing.assert_array_equal(
        np.array([e.time_s for e in detection.events], dtype=float),
        golden["event_times_s"],
    )
    np.testing.assert_array_equal(
        np.array([e.prominence for e in detection.events], dtype=float),
        golden["event_prominences"],
    )


@pytest.mark.parametrize("name", sorted(goldens.GOLDEN_SPECS))
def test_simulated_golden_bit_exact(catalog, name):
    seed = goldens.GOLDEN_SPECS[name][5]
    golden = load_golden(name)
    # Through the store catalog: recorded as .rst on first access,
    # replayed from disk after — the digest proves the replayed frames
    # are the exact realisation the golden was captured from.
    trace = catalog.get_or_simulate(goldens.golden_scenario(name), seed=seed)
    assert (
        goldens.frames_digest(trace.frames, trace.timestamps_s)
        == str(golden["frames_sha256"])
    )

    detection = BlinkRadar(frame_rate_hz=float(golden["frame_rate_hz"])).detect(
        trace.frames
    )
    assert_detection_matches(detection, golden)
    score = score_blink_detection(trace.blink_times_s, detection.event_times_s)
    assert score.accuracy == float(golden["accuracy"])


def test_synthetic_restart_golden_bit_exact():
    golden = load_golden(goldens.SYNTHETIC_NAME)
    frames = goldens.synthetic_restart_frames()
    timestamps_s = np.arange(len(frames)) / float(golden["frame_rate_hz"])
    assert goldens.frames_digest(frames, timestamps_s) == str(golden["frames_sha256"])

    detection = BlinkRadar(frame_rate_hz=float(golden["frame_rate_hz"])).detect(frames)
    assert_detection_matches(detection, golden)
    # The whole point of this golden: the movement restart fired.
    assert len(golden["restart_times_s"]) > 0


def test_stacked_sessions_match_goldens(catalog):
    """S>1 batching must not perturb any session: every golden realisation,
    run side by side through one BatchedPipeline, still matches its own
    frozen outputs bit for bit (ragged list entry point)."""
    names = sorted(goldens.GOLDEN_SPECS)
    traces = [
        catalog.get_or_simulate(
            goldens.golden_scenario(name), seed=goldens.GOLDEN_SPECS[name][5]
        )
        for name in names
    ]
    rate = traces[0].frame_rate_hz
    pipeline = BatchedPipeline(rate, n_sessions=len(names))
    statuses = pipeline.process_block([t.frames for t in traces])
    pipeline.finish()

    for i, name in enumerate(names):
        golden = load_golden(name)
        r = np.array([s.relative_distance for s in statuses[i]])
        bins = np.array([s.selected_bin for s in statuses[i]], dtype=int)
        restarts = np.array(
            [k / rate for k, s in enumerate(statuses[i]) if s.restarted], dtype=float
        )
        np.testing.assert_array_equal(r, golden["relative_distance"])
        np.testing.assert_array_equal(bins, golden["selected_bins"])
        np.testing.assert_array_equal(restarts, golden["restart_times_s"])
        np.testing.assert_array_equal(
            np.array([e.time_s for e in pipeline.detectors[i].events], dtype=float),
            golden["event_times_s"],
        )

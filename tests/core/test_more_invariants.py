"""Further pipeline invariants and configuration interplay."""

import numpy as np
import pytest

from repro.core.pipeline import BlinkRadar
from repro.core.realtime import RealTimeConfig
from repro.core.levd import LevdConfig
from repro.eval.metrics import score_blink_detection


class TestConfigInterplay:
    def test_custom_levd_threaded_through(self, lab_trace):
        # 200 sigma sits well above every blink prominence this clean
        # trace produces at the default threshold (50 sigma turned out to
        # sit on a knife edge where all blinks still clear the bar).
        tight = RealTimeConfig(levd=LevdConfig(threshold_sigmas=200.0))
        result = BlinkRadar(25.0, config=tight).detect(lab_trace.frames)
        loose = BlinkRadar(25.0).detect(lab_trace.frames)
        assert len(result.events) < len(loose.events)

    def test_longer_cold_start_defers_first_event(self, lab_trace):
        slow = RealTimeConfig(cold_start_frames=150)
        result = BlinkRadar(25.0, config=slow).detect(lab_trace.frames)
        if result.events:
            assert result.events[0].time_s >= 6.0

    def test_prominences_positive_and_ordered_sane(self, lab_trace):
        result = BlinkRadar(25.0).detect(lab_trace.frames)
        for e in result.events:
            assert e.prominence > 0
            assert e.frame_index == int(round(e.time_s * 25.0))

    def test_selected_bins_constant_between_reselects(self, lab_trace):
        result = BlinkRadar(25.0).detect(lab_trace.frames)
        bins = result.selected_bins
        valid = bins[bins >= 0]
        # Changes only at reselect boundaries: number of distinct runs is
        # far below the number of frames.
        changes = int(np.sum(np.diff(valid) != 0))
        assert changes <= len(valid) / 50


class TestNoiseRobustness:
    @pytest.mark.parametrize("extra_noise", [0.0, 5e-7, 2e-6])
    def test_accuracy_degrades_gracefully_with_noise(self, lab_trace, extra_noise, rng):
        frames = lab_trace.frames + extra_noise * (
            rng.normal(size=lab_trace.frames.shape)
            + 1j * rng.normal(size=lab_trace.frames.shape)
        )
        result = BlinkRadar(25.0).detect(frames)
        score = score_blink_detection(lab_trace.blink_times_s, result.event_times_s)
        if extra_noise == 0.0:
            assert score.accuracy >= 0.8
        else:
            assert score.accuracy >= 0.3  # degraded, not destroyed

    def test_constant_offset_immaterial(self, lab_trace):
        # A DC offset on every bin (receiver bias) must not change events.
        base = BlinkRadar(25.0).detect(lab_trace.frames)
        offset = BlinkRadar(25.0).detect(lab_trace.frames + (1e-4 + 1e-4j))
        assert [e.frame_index for e in offset.events] == [
            e.frame_index for e in base.events
        ]

"""Tests for the streaming drowsiness monitor."""

import numpy as np
import pytest

from repro.core.drowsy import BlinkRateClassifier, StreamingDrowsinessMonitor
from repro.core.analytics import DualFeatureClassifier
from repro.core.pipeline import BlinkRadar
from repro.physio import ParticipantProfile
from repro.sim import Scenario, simulate


@pytest.fixture(scope="module")
def trained_models():
    driver = ParticipantProfile("MON")
    radar = BlinkRadar(25.0)
    awake = Scenario(participant=driver, state="awake", duration_s=60.0,
                     allow_posture_shifts=False)
    drowsy = Scenario(participant=driver, state="drowsy", duration_s=60.0,
                      allow_posture_shifts=False)
    calibration = dict(
        awake_captures=[simulate(awake, seed=1).frames],
        drowsy_captures=[simulate(drowsy, seed=1).frames],
    )
    return {
        "driver": driver,
        "rate": radar.train_drowsiness(**calibration, features="rate"),
        "dual": radar.train_drowsiness(**calibration),
    }


class TestStreamingMonitor:
    def test_verdict_every_window(self, trained_models):
        driver = trained_models["driver"]
        trace = simulate(
            Scenario(participant=driver, state="awake", duration_s=120.0,
                     allow_posture_shifts=False), seed=5,
        )
        monitor = StreamingDrowsinessMonitor(25.0, trained_models["dual"],
                                             window_s=60.0)
        verdicts = [v for f in trace.frames if (v := monitor.push(f))]
        assert len(verdicts) == 2
        assert len(monitor.verdicts) == 2
        # Verdict timestamps at window boundaries.
        assert [t for t, _ in monitor.verdicts] == [60.0, 120.0]

    @pytest.mark.parametrize("model_key", ["rate", "dual"])
    def test_states_classified(self, trained_models, model_key):
        driver = trained_models["driver"]
        correct = total = 0
        for state in ("awake", "drowsy"):
            trace = simulate(
                Scenario(participant=driver, state=state, duration_s=60.0,
                         allow_posture_shifts=False), seed=9,
            )
            monitor = StreamingDrowsinessMonitor(
                25.0, trained_models[model_key], window_s=60.0
            )
            verdicts = [v for f in trace.frames if (v := monitor.push(f))]
            correct += sum(v == state for v in verdicts)
            total += len(verdicts)
        assert total == 2
        assert correct >= 1  # both right is typical; one slip tolerated

    def test_bad_window(self, trained_models):
        with pytest.raises(ValueError):
            StreamingDrowsinessMonitor(25.0, trained_models["rate"], window_s=0)

    def test_matches_offline_verdicts(self, trained_models):
        driver = trained_models["driver"]
        trace = simulate(
            Scenario(participant=driver, state="drowsy", duration_s=60.0,
                     allow_posture_shifts=False), seed=4,
        )
        monitor = StreamingDrowsinessMonitor(25.0, trained_models["rate"],
                                             window_s=60.0)
        streaming = [v for f in trace.frames if (v := monitor.push(f))]
        offline = BlinkRadar(25.0).detect_drowsiness(
            trace.frames, trained_models["rate"]
        )
        # The offline path flushes a possible trailing LEVD event that the
        # stream has not seen yet; rates may differ by at most that event,
        # which rarely flips a verdict — require agreement here.
        assert streaming == offline

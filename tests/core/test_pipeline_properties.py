"""Cross-cutting invariants of the detection pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import BlinkRadar
from repro.core.levd import LevdConfig, detect_blinks
from repro.core.realtime import RealTimeConfig


class TestPipelineInvariants:
    def test_events_strictly_ordered(self, lab_trace):
        result = BlinkRadar(25.0).detect(lab_trace.frames)
        times = result.event_times_s
        assert np.all(np.diff(times) > 0)

    def test_events_respect_refractory(self, drowsy_trace):
        cfg = RealTimeConfig()
        result = BlinkRadar(25.0, config=cfg).detect(drowsy_trace.frames)
        gaps = np.diff(result.event_times_s)
        assert np.all(gaps >= cfg.levd.refractory_s - 1e-9)

    def test_no_events_before_cold_start(self, lab_trace):
        result = BlinkRadar(25.0).detect(lab_trace.frames)
        assert all(e.time_s >= 2.0 for e in result.events)

    def test_global_amplitude_scale_invariance(self, lab_trace):
        # The chain (preprocess → bin select → arc fit → LEVD) must be
        # homogeneous: scaling all frames by a constant changes nothing.
        base = BlinkRadar(25.0).detect(lab_trace.frames)
        scaled = BlinkRadar(25.0).detect(lab_trace.frames * 7.3)
        assert [e.frame_index for e in scaled.events] == [
            e.frame_index for e in base.events
        ]

    def test_global_phase_rotation_invariance(self, lab_trace):
        # A constant phase rotation (cable length, LO phase) is physically
        # meaningless and must not affect detection.
        base = BlinkRadar(25.0).detect(lab_trace.frames)
        rotated = BlinkRadar(25.0).detect(lab_trace.frames * np.exp(1j * 1.234))
        assert [e.frame_index for e in rotated.events] == [
            e.frame_index for e in base.events
        ]

    def test_empty_scene_detects_nothing(self, rng):
        # Pure thermal noise, no driver: the detector must stay silent.
        frames = 5e-7 * (rng.normal(size=(1000, 234)) + 1j * rng.normal(size=(1000, 234)))
        result = BlinkRadar(25.0).detect(frames)
        assert len(result.events) <= 3

    def test_relative_distance_nonnegative(self, road_trace):
        result = BlinkRadar(25.0).detect(road_trace.frames)
        valid = result.relative_distance[~np.isnan(result.relative_distance)]
        assert np.all(valid >= 0)


class TestLevdThresholdMonotonicity:
    @given(factor=st.floats(1.2, 4.0))
    @settings(max_examples=15, deadline=None)
    def test_higher_threshold_never_more_events(self, factor):
        rng = np.random.default_rng(17)
        t = np.arange(1000) / 25.0
        x = 0.02 * rng.normal(size=1000)
        for bt in (8.0, 16.0, 24.0, 32.0):
            x += np.exp(-((t - bt) ** 2) / (2 * 0.08**2))
        low = detect_blinks(x, 25.0, LevdConfig(threshold_sigmas=5.0))
        high = detect_blinks(x, 25.0, LevdConfig(threshold_sigmas=5.0 * factor))
        assert len(high) <= len(low)

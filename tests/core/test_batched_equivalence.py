"""Property-based equivalence: batched kernels vs the frame-at-a-time walk.

The batching contract is *exact*: fusing the per-frame hot path over a
block, splitting a stream into arbitrary blocks, or stacking S sessions
through one :class:`BatchedPipeline` must reproduce the frame-at-a-time
results bit for bit — same r(k) down to the last ulp, same bins, same
events. Hypothesis drives randomized scenes through both paths and
compares every field. That includes the failure surface: a NaN frame
(a dropped capture) can poison the circle fit into a ``LinAlgError``,
and the batched path must fail exactly where the scalar path does —
"handled" NaN on one path and a crash on the other would be divergence.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batched import BatchedPipeline
from repro.core.realtime import RealTimeBlinkDetector

FRAME_RATE_HZ = 25.0


def scene(seed, n_frames, n_bins, eye_bin, nan_frames=()):
    """A noisy scene with one blinking reflector; NaN rows = dropped frames."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_frames)
    frames = 2e-6 * (
        rng.normal(size=(n_frames, n_bins)) + 1j * rng.normal(size=(n_frames, n_bins))
    )
    # Eyelid-like phase modulation plus a static secondary reflector.
    phase = 0.8 + 0.25 * np.sin(2 * np.pi * t / 40.0)
    frames[:, eye_bin] += 1e-3 * np.exp(1j * phase)
    if n_bins > eye_bin + 3:
        frames[:, eye_bin + 3] += 4e-4 * np.exp(1j * 0.3)
    for k in nan_frames:
        frames[k] = np.nan + 1j * np.nan
    return frames


@st.composite
def scenes(draw, min_frames=40, max_frames=140, with_nan=True):
    n_frames = draw(st.integers(min_frames, max_frames))
    n_bins = draw(st.integers(12, 48))
    eye_bin = draw(st.integers(2, n_bins - 3))
    nan_frames = (
        draw(st.lists(st.integers(0, n_frames - 1), max_size=2, unique=True))
        if with_nan
        else []
    )
    seed = draw(st.integers(0, 2**31 - 1))
    return scene(seed, n_frames, n_bins, eye_bin, nan_frames=tuple(nan_frames))


def run_outcome(fn):
    """("ok", result) or ("raised", exception type name) — for asserting
    that two execution orders share their whole behaviour, crashes too."""
    try:
        return ("ok", fn())
    except Exception as exc:  # reprolint: disable=except-hygiene
        return ("raised", type(exc).__name__)


def assert_status_equal(a, b):
    assert a.frame_index == b.frame_index
    assert a.selected_bin == b.selected_bin
    assert a.restarted == b.restarted
    # Bitwise, NaN-aware: cold-start frames carry NaN r(k) on both paths.
    assert np.array_equal(
        np.float64(a.relative_distance), np.float64(b.relative_distance), equal_nan=True
    )
    assert a.event == b.event


def assert_runs_equal(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert_status_equal(a, b)


@given(frames=scenes())
@settings(max_examples=25, deadline=None)
def test_block_equals_per_frame(frames):
    """S=1 fused block == the seed scalar walk, one frame at a time."""
    blocked = run_outcome(lambda: RealTimeBlinkDetector(FRAME_RATE_HZ).process_block(frames))
    scalar_det = RealTimeBlinkDetector(FRAME_RATE_HZ)
    scalar = run_outcome(lambda: [scalar_det.process_frame(frame) for frame in frames])
    assert blocked[0] == scalar[0]
    if blocked[0] == "ok":
        assert_runs_equal(blocked[1], scalar[1])
    else:
        assert blocked[1] == scalar[1]


@given(frames=scenes(), data=st.data())
@settings(max_examples=25, deadline=None)
def test_block_split_invariance(frames, data):
    """Any chunking of the stream — empty chunks included — is inert."""
    n = len(frames)
    cuts = sorted(data.draw(st.lists(st.integers(0, n), max_size=4)))
    bounds = [0, *cuts, n]
    chunked_det = RealTimeBlinkDetector(FRAME_RATE_HZ)

    def run_chunked():
        statuses = []
        for lo, hi in zip(bounds, bounds[1:]):
            statuses.extend(chunked_det.process_block(frames[lo:hi]))
        return statuses

    chunked = run_outcome(run_chunked)
    whole_det = RealTimeBlinkDetector(FRAME_RATE_HZ)
    whole = run_outcome(lambda: whole_det.process_block(frames))
    assert chunked[0] == whole[0]
    if chunked[0] == "ok":
        assert_runs_equal(chunked[1], whole[1])
        assert chunked_det.finish() == whole_det.finish()
    else:
        assert chunked[1] == whole[1]


@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_stacked_sessions_equal_solo(data):
    """S>1 stacking — ragged lengths, Tᵢ=0, mixed bin counts, NaN frames —
    leaves every session bit-identical to running its detector alone."""
    n_sessions = data.draw(st.integers(2, 4))
    shared_bins = data.draw(st.integers(16, 40))
    blocks = []
    for i in range(n_sessions):
        n_frames = data.draw(st.integers(0, 120))
        # Mostly homogeneous geometry (the fused path); occasionally a
        # session with its own bin count (the per-session fallback).
        n_bins = (
            data.draw(st.integers(16, 40))
            if data.draw(st.booleans()) and i > 0
            else shared_bins
        )
        eye_bin = data.draw(st.integers(2, n_bins - 3))
        nan_frames = (
            (data.draw(st.integers(0, n_frames - 1)),)
            if n_frames and data.draw(st.booleans())
            else ()
        )
        seed = data.draw(st.integers(0, 2**31 - 1))
        blocks.append(scene(seed, n_frames, n_bins, eye_bin, nan_frames=nan_frames))

    solo_dets = [RealTimeBlinkDetector(FRAME_RATE_HZ) for _ in blocks]
    solos = [
        run_outcome(lambda det=det, block=block: det.process_block(block))
        for det, block in zip(solo_dets, blocks)
    ]
    pipeline = BatchedPipeline(FRAME_RATE_HZ, n_sessions=n_sessions)
    stacked = run_outcome(lambda: pipeline.process_block(blocks))

    if all(kind == "ok" for kind, _ in solos):
        assert stacked[0] == "ok"
        tails = pipeline.finish()
        for i, (_, solo) in enumerate(solos):
            assert_runs_equal(stacked[1][i], solo)
            assert tails[i] == solo_dets[i].finish()
            assert pipeline.events[i] == list(solo_dets[i].events)
    else:
        # A session whose solo walk crashes must crash the batch too —
        # the batch must not silently absorb what the scalar path raises.
        assert stacked[0] == "raised"
        assert stacked[1] in {name for kind, name in solos if kind == "raised"}

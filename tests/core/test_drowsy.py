"""Tests for repro.core.drowsy."""

import numpy as np
import pytest

from repro.core.drowsy import BlinkRateClassifier, DrowsyDetector, blink_rate_windows
from repro.core.levd import BlinkDetection


def events_at(times, fps=25.0):
    return [
        BlinkDetection(frame_index=int(t * fps), time_s=t, prominence=1.0) for t in times
    ]


class TestBlinkRateWindows:
    def test_simple_count(self):
        times = np.array([10.0, 20.0, 30.0, 70.0])
        rates = blink_rate_windows(times, duration_s=120.0, window_s=60.0)
        assert rates.tolist() == [3.0, 1.0]

    def test_rate_unit_is_per_minute(self):
        times = np.arange(0, 30, 1.0)  # 30 blinks in 30 s
        rates = blink_rate_windows(times, duration_s=30.0, window_s=30.0)
        assert rates[0] == pytest.approx(60.0)

    def test_partial_window_dropped(self):
        rates = blink_rate_windows(np.array([5.0]), duration_s=90.0, window_s=60.0)
        assert len(rates) == 1

    def test_overlapping_hops(self):
        times = np.array([10.0, 70.0])
        rates = blink_rate_windows(times, duration_s=120.0, window_s=60.0, hop_s=30.0)
        assert len(rates) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            blink_rate_windows(np.array([]), duration_s=0.0)
        with pytest.raises(ValueError):
            blink_rate_windows(np.array([]), duration_s=60.0, hop_s=0.0)


class TestBlinkRateClassifier:
    def fit_default(self):
        rng = np.random.default_rng(0)
        awake = rng.normal(19, 2, 40)
        drowsy = rng.normal(27, 3, 40)
        return BlinkRateClassifier().fit(awake, drowsy)

    def test_threshold_between_means(self):
        clf = self.fit_default()
        assert clf.awake_mean < clf.threshold < clf.drowsy_mean

    def test_classification_at_extremes(self):
        clf = self.fit_default()
        assert clf.classify(15.0) == "awake"
        assert clf.classify(32.0) == "drowsy"

    def test_classify_windows_batch(self):
        clf = self.fit_default()
        assert clf.classify_windows(np.array([15.0, 32.0])) == ["awake", "drowsy"]

    def test_untrained_raises(self):
        clf = BlinkRateClassifier()
        with pytest.raises(RuntimeError):
            clf.classify(20.0)
        with pytest.raises(RuntimeError):
            _ = clf.threshold

    def test_inverted_calibration_flagged(self):
        clf = BlinkRateClassifier().fit(np.array([30.0, 31.0]), np.array([20.0, 21.0]))
        assert clf.calibration_inverted
        healthy = BlinkRateClassifier().fit(np.array([19.0, 20.0]), np.array([26.0, 27.0]))
        assert not healthy.calibration_inverted

    def test_empty_calibration_rejected(self):
        with pytest.raises(ValueError):
            BlinkRateClassifier().fit(np.array([]), np.array([25.0]))

    def test_degenerate_variance_guarded(self):
        clf = BlinkRateClassifier().fit(np.full(5, 19.0), np.full(5, 27.0))
        assert clf.awake_std >= 0.5  # floor applied
        assert clf.classify(19.0) == "awake"

    def test_unequal_variance_threshold_in_range(self):
        rng = np.random.default_rng(1)
        clf = BlinkRateClassifier().fit(rng.normal(19, 1, 50), rng.normal(27, 6, 50))
        assert 19 < clf.threshold < 27


class TestDrowsyDetector:
    def test_detects_states(self):
        clf = BlinkRateClassifier().fit(
            np.random.default_rng(2).normal(19, 2, 30),
            np.random.default_rng(3).normal(27, 2, 30),
        )
        det = DrowsyDetector(clf)
        slow = events_at(np.linspace(0, 59, 18))
        fast = events_at(np.linspace(0, 59, 28))
        assert det.detect(slow, 60.0) == ["awake"]
        assert det.detect(fast, 60.0) == ["drowsy"]

    def test_window_validation(self):
        clf = BlinkRateClassifier().fit(np.array([19.0, 20]), np.array([26.0, 27]))
        with pytest.raises(ValueError):
            DrowsyDetector(clf, window_s=0)

"""Tests for repro.core.vitals."""

import numpy as np
import pytest

from repro.core.pipeline import BlinkRadar
from repro.core.vitals import VitalSignsMonitor
from repro.physio import ParticipantProfile
from repro.physio.cardiac import CardiacModel
from repro.physio.respiration import RespirationModel
from repro.sim import Scenario, simulate


@pytest.fixture(scope="module")
def vitals_trace():
    participant = ParticipantProfile(
        "VIT",
        respiration=RespirationModel(rate_hz=0.25),
        cardiac=CardiacModel(rate_hz=1.15),
    )
    scenario = Scenario(participant=participant, duration_s=40.0,
                        allow_posture_shifts=False)
    return simulate(scenario, seed=55), participant


class TestRespiration:
    def test_rate_within_one_bpm(self, vitals_trace):
        trace, participant = vitals_trace
        vs = VitalSignsMonitor(25.0).measure(trace.frames)
        assert vs.respiration_bpm == pytest.approx(
            participant.respiration.rate_hz * 60.0, abs=1.5
        )

    def test_torso_bin_behind_head_bin(self, vitals_trace):
        trace, _ = vitals_trace
        vs = VitalSignsMonitor(25.0).measure(trace.frames)
        assert vs.torso_bin > vs.head_bin


class TestHeartRate:
    def test_in_physiological_band(self, vitals_trace):
        trace, _ = vitals_trace
        vs = VitalSignsMonitor(25.0).measure(trace.frames)
        assert 48.0 <= vs.heart_rate_bpm <= 132.0

    def test_blink_excision_accepts_pipeline_events(self, vitals_trace):
        trace, participant = vitals_trace
        blinks = np.array(
            [e.frame_index for e in BlinkRadar(25.0).detect(trace.frames).events]
        )
        vs = VitalSignsMonitor(25.0).measure(trace.frames, blink_frames=blinks)
        # BCG-based HR is coarse (see module docs); demand the right regime.
        assert abs(vs.heart_rate_bpm - participant.cardiac.rate_hz * 60.0) < 20.0


class TestValidation:
    def test_short_capture_rejected(self):
        with pytest.raises(ValueError, match="20 s"):
            VitalSignsMonitor(25.0).measure(np.zeros((100, 64), dtype=complex))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            VitalSignsMonitor(25.0).measure(np.zeros(100))

    def test_frame_rate_too_low_for_cardiac(self):
        with pytest.raises(ValueError):
            VitalSignsMonitor(4.0)

    def test_bad_frame_rate(self):
        with pytest.raises(ValueError):
            VitalSignsMonitor(0.0)

"""Failure injection on the device stack: the driver must stay sane when
the wire misbehaves."""

import numpy as np
import pytest

from repro.hardware.device import UwbRadarDevice
from repro.hardware.driver import FrameStream, XepDriver
from repro.hardware.registers import REGISTERS
from repro.hardware.spi import NAK, SpiBus, SpiError, crc8


class FlakyWire:
    """Wraps a device, corrupting the n-th outbound transaction."""

    def __init__(self, device, corrupt_at: int):
        self.device = device
        self.corrupt_at = corrupt_at
        self.count = 0

    def spi_transaction(self, mosi: bytes) -> bytes:
        self.count += 1
        if self.count == self.corrupt_at:
            mosi = bytes([mosi[0] ^ 0x01]) + mosi[1:]  # flip a bit pre-CRC check
        return self.device.spi_transaction(mosi)


class TestFlakyWire:
    def test_corrupted_write_raises_not_corrupts(self):
        dev = UwbRadarDevice(frame_source=np.ones((4, 8)))
        bus = SpiBus(FlakyWire(dev, corrupt_at=1))
        with pytest.raises(SpiError):
            bus.write_register(REGISTERS["TX_POWER"].address, 0x10)
        # The register must be untouched after the NAKed write.
        assert dev.registers.read_name("TX_POWER") == 0xFF

    def test_driver_recovers_after_transient_error(self):
        dev = UwbRadarDevice(frame_source=np.ones((4, 8)))
        bus = SpiBus(FlakyWire(dev, corrupt_at=1))
        drv = XepDriver(bus, n_bins=8)
        with pytest.raises(SpiError):
            drv.probe()
        assert drv.probe() == 0x12  # next transaction is clean


class TestFifoPressure:
    def test_overflow_drops_oldest_keeps_latest(self):
        frames = np.array([np.full(8, (k + 1) * 1e-5) for k in range(10)])
        dev = UwbRadarDevice(frame_source=frames, fifo_capacity_bytes=2 * 32)
        dev.registers.write_name("TRX_CTRL", 0x01)
        for _ in range(10):
            dev.tick()
        assert dev.registers.read_name("STATUS") & 0x02  # overflow flagged
        remaining = list(dev.fifo_frames())
        # The newest frame must still be present at the FIFO tail.
        lsb = dev.full_scale / 32767
        assert remaining[-1][0] == pytest.approx(10e-5, abs=2 * lsb)

    def test_slow_reader_still_gets_coherent_frames(self):
        frames = np.array([np.full(8, (k + 1) * 1e-5) for k in range(12)])
        dev = UwbRadarDevice(frame_source=frames, fifo_capacity_bytes=4 * 32)
        drv = XepDriver(SpiBus(dev), n_bins=8)
        drv.start()
        # Tick 3x per read (reader at 1/3 speed): frames drop but the ones
        # delivered must decode to real frame values, never torn halves.
        lsb = dev.full_scale / 32767
        seen = []
        for _ in range(12):
            dev.tick()
            if len(seen) % 3 == 0:
                f = drv.read_frame(dev)
                if f is not None:
                    seen.append(f)
        valid_values = [(k + 1) * 1e-5 for k in range(12)]
        for f in seen:
            assert any(abs(f[0] - v) < 2 * lsb for v in valid_values)


class TestMalformedTransactions:
    def test_short_transaction_nak(self):
        dev = UwbRadarDevice(frame_source=np.ones((2, 4)))
        assert dev.spi_transaction(b"\x00") == bytes([NAK])

    def test_oversized_write_nak(self):
        dev = UwbRadarDevice(frame_source=np.ones((2, 4)))
        body = bytes([0x80 | 0x12, 0x01, 0x02])
        framed = body + bytes([crc8(body)])
        assert dev.spi_transaction(framed) == bytes([NAK])

    def test_burst_with_wrong_length_nak(self):
        dev = UwbRadarDevice(frame_source=np.ones((2, 4)))
        body = bytes([0x40])
        framed = body + bytes([crc8(body)])
        assert dev.spi_transaction(framed) == bytes([NAK])

    def test_read_unmapped_register_nak(self):
        dev = UwbRadarDevice(frame_source=np.ones((2, 4)))
        body = bytes([0x3F])  # inside command space, not a register
        framed = body + bytes([crc8(body)])
        assert dev.spi_transaction(framed) == bytes([NAK])

"""Tests for the emulated device stack (registers, SPI, device, driver)."""

import numpy as np
import pytest

from repro.hardware.device import UwbRadarDevice
from repro.hardware.driver import FrameStream, XepDriver
from repro.hardware.registers import REGISTERS, RegisterFile
from repro.hardware.spi import ACK, NAK, SpiBus, SpiError, crc8


class TestCrc8:
    def test_known_vector(self):
        # CRC-8/ATM of "123456789" is 0xF4.
        assert crc8(b"123456789") == 0xF4

    def test_detects_single_bit_flip(self):
        data = bytes([0x81, 0x55])
        good = crc8(data)
        assert crc8(bytes([0x81, 0x54])) != good

    def test_empty(self):
        assert crc8(b"") == 0


class TestRegisterFile:
    def test_reset_values(self):
        rf = RegisterFile()
        assert rf.read_name("CHIP_ID") == 0xA4
        assert rf.read_name("FRAME_RATE_DIV") == 4

    def test_write_read(self):
        rf = RegisterFile()
        rf.write_name("TX_POWER", 0x80)
        assert rf.read_name("TX_POWER") == 0x80

    def test_read_only_protection(self):
        rf = RegisterFile()
        with pytest.raises(PermissionError):
            rf.write_name("CHIP_ID", 0x00)
        rf.write_name("STATUS", 0x03, force=True)  # the device itself may

    def test_unmapped_address(self):
        rf = RegisterFile()
        with pytest.raises(KeyError):
            rf.read(0x77)

    def test_value_range(self):
        rf = RegisterFile()
        with pytest.raises(ValueError):
            rf.write_name("TX_POWER", 300)

    def test_reset_restores(self):
        rf = RegisterFile()
        rf.write_name("TX_POWER", 1)
        rf.reset()
        assert rf.read_name("TX_POWER") == 0xFF


@pytest.fixture()
def dev():
    frames = np.full((20, 8), 1e-4 + 1e-4j)
    return UwbRadarDevice(frame_source=frames)


@pytest.fixture()
def bus(dev):
    return SpiBus(dev)


class TestSpiProtocol:
    def test_register_roundtrip_over_wire(self, bus):
        bus.write_register(REGISTERS["TX_POWER"].address, 0x42)
        assert bus.read_register(REGISTERS["TX_POWER"].address) == 0x42

    def test_bad_crc_nak(self, dev):
        # Corrupt the CRC by hand.
        reply = dev.spi_transaction(bytes([0x00, 0xFF]))
        assert reply == bytes([NAK])

    def test_write_to_readonly_nak(self, bus):
        with pytest.raises(SpiError):
            bus.write_register(REGISTERS["CHIP_ID"].address, 0x00)

    def test_burst_beyond_fifo_nak(self, bus):
        with pytest.raises(SpiError):
            bus.burst_read(100)

    def test_master_validates_lengths(self, bus):
        with pytest.raises(ValueError):
            bus.burst_read(0)
        with pytest.raises(ValueError):
            bus.write_register(0x50, 1)  # outside 6-bit command space


class TestDevice:
    def test_tick_requires_running(self, dev):
        assert dev.tick() is False
        dev.registers.write_name("TRX_CTRL", 0x01)
        assert dev.tick() is True

    def test_quantisation_roundtrip(self, dev):
        frame = (np.random.default_rng(0).normal(size=8)
                 + 1j * np.random.default_rng(1).normal(size=8)) * 1e-4
        decoded = dev.decode_frame(dev.encode_frame(frame))
        assert np.max(np.abs(decoded - frame)) < 2 * dev.full_scale / 32767

    def test_fifo_count_registers(self, dev):
        dev.registers.write_name("TRX_CTRL", 0x01)
        dev.tick()
        count = dev.registers.read_name("FIFO_COUNT_L") | (
            dev.registers.read_name("FIFO_COUNT_H") << 8
        )
        assert count == 8 * 4  # one 8-bin frame = 32 bytes

    def test_overflow_flag_on_fifo_full(self):
        frames = np.full((100, 8), 1e-4)
        dev = UwbRadarDevice(frame_source=frames, fifo_capacity_bytes=3 * 32)
        dev.registers.write_name("TRX_CTRL", 0x01)
        for _ in range(10):
            dev.tick()
        assert dev.registers.read_name("STATUS") & 0x02

    def test_soft_reset_clears_fifo(self, dev, bus):
        dev.registers.write_name("TRX_CTRL", 0x01)
        dev.tick()
        bus.write_register(REGISTERS["SOFT_RESET"].address, 0x01)
        assert dev.registers.read_name("FIFO_COUNT_L") == 0
        assert dev.registers.read_name("TRX_CTRL") == 0x00

    def test_source_exhaustion(self):
        dev = UwbRadarDevice(frame_source=np.ones((2, 4)))
        dev.registers.write_name("TRX_CTRL", 0x01)
        assert dev.tick() and dev.tick()
        assert dev.tick() is False

    def test_callable_source(self):
        dev = UwbRadarDevice(frame_source=lambda k: np.full(4, (k + 1) * 1e-5))
        dev.registers.write_name("TRX_CTRL", 0x01)
        assert dev.tick()
        frame = next(dev.fifo_frames())
        lsb = dev.full_scale / 32767
        assert frame[0] == pytest.approx(1e-5, abs=2 * lsb)


class TestDriver:
    def test_probe(self, dev, bus):
        drv = XepDriver(bus, n_bins=8)
        assert drv.probe() == 0x12

    def test_probe_rejects_wrong_chip(self):
        class NotOurChip:
            def spi_transaction(self, mosi):
                return bytes([0x00])

        drv = XepDriver(SpiBus(NotOurChip()), n_bins=8)
        with pytest.raises(SpiError):
            drv.probe()

    def test_configure_programs_registers(self, dev, bus):
        drv = XepDriver(bus, n_bins=8)
        drv.configure(frame_rate_div=10, tx_power=0x80)
        assert dev.registers.read_name("FRAME_RATE_DIV") == 10
        assert dev.frame_period_s == pytest.approx(0.1)

    def test_full_stream_roundtrip(self, dev, bus):
        drv = XepDriver(bus, n_bins=8)
        drv.probe()
        drv.configure()
        drv.start()
        frames = [f for _, f in FrameStream(drv, dev, n_frames=20)]
        assert len(frames) == 20
        assert np.allclose(frames[0], 1e-4 + 1e-4j, rtol=1e-3)

    def test_stream_timestamps(self, dev, bus):
        drv = XepDriver(bus, n_bins=8)
        drv.configure(frame_rate_div=4)
        drv.start()
        stamps = [t for t, _ in FrameStream(drv, dev, n_frames=5)]
        assert np.allclose(np.diff(stamps), 0.04)

    def test_stream_ends_on_exhaustion(self, dev, bus):
        drv = XepDriver(bus, n_bins=8)
        drv.configure()
        drv.start()
        frames = list(FrameStream(drv, dev))  # unbounded; source has 20
        assert len(frames) == 20

    def test_read_frame_none_when_empty(self, dev, bus):
        drv = XepDriver(bus, n_bins=8)
        assert drv.read_frame(dev) is None

    def test_stop(self, dev, bus):
        drv = XepDriver(bus, n_bins=8)
        drv.start()
        drv.stop()
        assert dev.tick() is False

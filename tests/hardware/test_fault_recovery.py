"""Fault paths on the hardware stack: bad probes, FIFO overflow recovery,
device-time timestamps across drops, and the ACK-framed read protocol."""

import numpy as np
import pytest

from repro.hardware.device import UwbRadarDevice
from repro.hardware.driver import FrameStream, XepDriver
from repro.hardware.registers import REGISTERS
from repro.hardware.spi import SpiBus, SpiError

N_BINS = 8
FRAME_BYTES = N_BINS * 4


def make_stack(n_frames=20, fifo_frames=8):
    frames = np.array([np.full(N_BINS, (k + 1) * 1e-5) for k in range(n_frames)])
    dev = UwbRadarDevice(frame_source=frames, fifo_capacity_bytes=fifo_frames * FRAME_BYTES)
    drv = XepDriver(SpiBus(dev), n_bins=N_BINS)
    return dev, drv, frames


class TestProbe:
    def test_wrong_chip_id_raises(self):
        dev, drv, _ = make_stack()
        # A different chip (or a floating bus) answers the ID read.
        dev.registers.write_name("CHIP_ID", 0x77, force=True)
        with pytest.raises(SpiError, match="chip id"):
            drv.probe()

    def test_good_probe_returns_version(self):
        _, drv, _ = make_stack()
        assert drv.probe() == REGISTERS["VERSION"].reset_value


class TestOverflowRecovery:
    def test_overflow_bit_visible_through_driver(self):
        dev, drv, _ = make_stack(fifo_frames=2)
        drv.start()
        for _ in range(5):  # 5 frames into a 2-frame FIFO
            dev.tick()
        ready, overflow = drv.status()
        assert ready and overflow

    def test_soft_reset_restores_power_on_state(self):
        dev, drv, _ = make_stack(fifo_frames=2)
        drv.configure(frame_rate_div=2, tx_power=0x40)
        drv.start()
        for _ in range(5):
            dev.tick()
        drv.soft_reset()
        assert drv.fifo_count() == 0
        assert drv.frame_count() == 0
        assert not any(drv.status())  # ready + overflow both cleared
        assert dev.registers.read_name("FRAME_RATE_DIV") == 4
        assert dev.registers.read_name("TX_POWER") == 0xFF
        assert not dev.running

    def test_reconfigure_after_reset_streams_again(self):
        # A callable source owning its own cursor (the repro.fleet
        # pattern): the reset rewinds *device* time, never the world.
        frames = np.array([np.full(N_BINS, (k + 1) * 1e-5) for k in range(20)])
        cursor = [0]

        def world(_k):
            frame = frames[cursor[0]]
            cursor[0] += 1
            return frame

        dev = UwbRadarDevice(frame_source=world, fifo_capacity_bytes=2 * FRAME_BYTES)
        drv = XepDriver(SpiBus(dev), n_bins=N_BINS)
        drv.start()
        for _ in range(5):
            dev.tick()
        drv.soft_reset()
        drv.configure(frame_rate_div=4, tx_power=0xFF)
        drv.start()
        stream = FrameStream(drv, dev, n_frames=3)
        got = list(stream)
        assert len(got) == 3
        # Device time restarts at zero after the reset...
        assert [t for t, _ in got] == [0.0, 0.04, 0.08]
        # ...but the world moved on: the first post-reset frame is the
        # sixth world frame, not a replay of the first.
        lsb = dev.full_scale / 32767
        assert got[0][1][0] == pytest.approx(frames[5][0], abs=2 * lsb)


class TestDeviceTimeTimestamps:
    def test_clean_stream_counts_every_period(self):
        dev, drv, _ = make_stack(n_frames=10)
        drv.start()
        stream = FrameStream(drv, dev)
        stamps = [t for t, _ in stream]
        assert stamps == pytest.approx([0.04 * k for k in range(10)])
        assert stream.delivered == 10
        assert stream.dropped == 0
        assert stream.exhausted

    def test_timestamps_and_drop_counter_span_overflow(self):
        """A stalled host loses frames, but the stream's timeline must not
        compress: timestamps stay anchored to device production time and
        the loss is reported."""
        dev, drv, frames = make_stack(n_frames=20, fifo_frames=4)
        drv.start()
        for _ in range(10):  # host stalled: 10 produced, FIFO keeps last 4
            dev.tick()
        stream = FrameStream(drv, dev)
        t, frame = stream.poll()  # tick 11: frame 6 overflows out, frame 7 pops
        assert t == pytest.approx(7 * 0.04)
        assert stream.dropped == 7
        lsb = dev.full_scale / 32767
        assert frame[0] == pytest.approx(frames[7][0], abs=2 * lsb)
        # After the backlog clears, cadence resumes without re-dropping.
        rest = [t for t, _ in stream]
        assert rest[0] == pytest.approx(8 * 0.04)
        assert rest[-1] == pytest.approx(19 * 0.04)
        assert stream.dropped == 7
        assert stream.delivered + stream.dropped == 20

    def test_frame_count_register_unwraps_past_16_bits(self):
        dev = UwbRadarDevice(
            frame_source=lambda k: np.full(N_BINS, 1e-5),
            fifo_capacity_bytes=4 * FRAME_BYTES,
        )
        drv = XepDriver(SpiBus(dev), n_bins=N_BINS)
        drv.start()
        # Pretend the chip has been sampling for ~43 minutes.
        dev._frame_counter = 0xFFFC
        stream = FrameStream(drv, dev)
        stamps = [stream.poll()[0] for _ in range(8)]
        deltas = np.diff(stamps)
        assert deltas == pytest.approx([0.04] * 7)  # monotonic across the wrap
        assert stamps[-1] > 0xFFFF * 0.04  # really crossed 2**16 frames


class TestAckFraming:
    """A register or FIFO byte equal to NAK (0xEE) must read back intact —
    the protocol disambiguates via a leading ACK on every read reply."""

    def test_register_value_0xee_reads_back(self):
        dev, drv, _ = make_stack()
        drv.bus.write_register(REGISTERS["TX_POWER"].address, 0xEE)
        assert drv.bus.read_register(REGISTERS["TX_POWER"].address) == 0xEE

    def test_burst_payload_of_0xee_bytes_decodes(self):
        # int16 value 0xEEEE: every payload byte is the NAK code.
        value = np.int16(-0x1112)  # 0xEEEE as signed little-endian
        scale = float(value) / 32767.0
        frame = np.full(N_BINS, scale * 4.0e-3 + 1j * scale * 4.0e-3)
        dev = UwbRadarDevice(frame_source=lambda k: frame)
        drv = XepDriver(SpiBus(dev), n_bins=N_BINS)
        drv.start()
        dev.tick()
        out = drv.read_frame(dev)
        assert out is not None
        assert out[0].real == pytest.approx(scale * 4.0e-3, rel=1e-3)

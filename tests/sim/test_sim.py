"""Tests for repro.sim (scenario, simulator, trace)."""

import numpy as np
import pytest

from repro.physio import ParticipantProfile
from repro.rf.geometry import SensorPose
from repro.sim import RadarTrace, Scenario, simulate
from repro.sim.simulator import ScenarioSimulator


def make_scenario(**kwargs):
    defaults = dict(
        participant=ParticipantProfile("T"),
        duration_s=10.0,
        allow_posture_shifts=False,
    )
    defaults.update(kwargs)
    return Scenario(**defaults)


class TestScenario:
    def test_n_frames(self):
        assert make_scenario(duration_s=10.0).n_frames == 250

    def test_invalid_state(self):
        with pytest.raises(ValueError):
            make_scenario(state="tired")

    def test_invalid_road(self):
        with pytest.raises(KeyError, match="unknown road"):
            make_scenario(road="dirt")

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            make_scenario(duration_s=0)

    def test_vehicle_uses_road(self):
        sc = make_scenario(road="bumpy")
        assert sc.vehicle().road.name == "bumpy"


class TestSimulator:
    def test_trace_shape(self):
        tr = simulate(make_scenario(), seed=0)
        assert tr.frames.shape == (250, tr.n_bins)
        assert tr.frame_rate_hz == 25.0

    def test_deterministic_with_seed(self):
        a = simulate(make_scenario(), seed=5)
        b = simulate(make_scenario(), seed=5)
        assert np.array_equal(a.frames, b.frames)
        assert a.blink_times_s.tolist() == b.blink_times_s.tolist()

    def test_different_seeds_differ(self):
        a = simulate(make_scenario(), seed=1)
        b = simulate(make_scenario(), seed=2)
        assert not np.allclose(a.frames, b.frames)

    def test_eye_bin_matches_pose(self):
        sc = make_scenario(pose=SensorPose(distance_m=0.6))
        tr = simulate(sc, seed=0)
        assert tr.eye_bin == sc.radar.range_to_bin(0.6)

    def test_blink_ground_truth_present(self):
        tr = simulate(make_scenario(duration_s=30.0), seed=3)
        assert len(tr.blink_events) >= 4  # ~19/min nominal

    def test_metadata_populated(self):
        tr = simulate(make_scenario(road="bumpy"), seed=0)
        assert tr.metadata["road"] == "bumpy"
        assert tr.metadata["distance_m"] == pytest.approx(0.4)

    def test_eye_blink_modulates_eye_bin(self):
        # The eye bin's amplitude must dip while the eye is closed.
        sc = make_scenario(duration_s=30.0)
        tr = simulate(sc, seed=4)
        amp = np.abs(tr.frames[:, tr.eye_bin])
        for e in tr.blink_events:
            if e.start_s < 2 or e.end_s > 29:
                continue
            mid = int(e.center_s * 25)
            before = amp[int(e.start_s * 25) - 8 : int(e.start_s * 25) - 2].mean()
            during = amp[mid - 1 : mid + 2].mean()
            assert during != pytest.approx(before, rel=1e-4)

    def test_glasses_attenuate_eye_return(self):
        base = make_scenario()
        shaded = make_scenario(
            participant=ParticipantProfile("S", glasses="sunglasses")
        )
        amp_plain = ScenarioSimulator(base)._eye_amplitude()
        amp_shade = ScenarioSimulator(shaded)._eye_amplitude()
        assert amp_shade < amp_plain

    def test_distance_reduces_amplitude(self):
        near = ScenarioSimulator(make_scenario(pose=SensorPose(distance_m=0.2)))
        far = ScenarioSimulator(make_scenario(pose=SensorPose(distance_m=0.8)))
        assert near._eye_amplitude() / far._eye_amplitude() == pytest.approx(16.0, rel=0.05)

    def test_angle_reduces_amplitude(self):
        on = ScenarioSimulator(make_scenario())
        off = ScenarioSimulator(make_scenario(pose=SensorPose(azimuth_deg=45.0)))
        assert off._eye_amplitude() < 0.2 * on._eye_amplitude()


class TestRadarTrace:
    def test_roundtrip_npz(self, tmp_path):
        tr = simulate(make_scenario(duration_s=5.0), seed=0)
        path = tmp_path / "trace.npz"
        tr.save(path)
        loaded = RadarTrace.load(path)
        assert np.array_equal(loaded.frames, tr.frames)
        assert loaded.frame_rate_hz == tr.frame_rate_hz
        assert loaded.eye_bin == tr.eye_bin
        assert loaded.state == tr.state
        assert loaded.metadata == tr.metadata
        assert [e.start_s for e in loaded.blink_events] == [
            e.start_s for e in tr.blink_events
        ]

    def test_blink_rate(self):
        tr = simulate(make_scenario(duration_s=60.0), seed=1)
        assert tr.blink_rate_per_min() == pytest.approx(len(tr.blink_events), rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadarTrace(
                frames=np.zeros((3, 4)),
                timestamps_s=np.zeros(2),
                frame_rate_hz=25.0,
                blink_events=[],
            )
        with pytest.raises(ValueError):
            RadarTrace(
                frames=np.zeros(4),
                timestamps_s=np.zeros(4),
                frame_rate_hz=25.0,
                blink_events=[],
            )

    def test_duration(self):
        tr = simulate(make_scenario(duration_s=8.0), seed=0)
        assert tr.duration_s == pytest.approx(8.0)

"""DetectorSession: lifecycle, fault recovery, frame accounting, and
equivalence with the offline pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import BlinkRadar
from repro.core.realtime import RealTimeBlinkDetector
from repro.eval.metrics import score_blink_detection
from repro.fleet import (
    DetectorSession,
    DrowsyAlertEvent,
    FaultEvent,
    RestartEvent,
    SessionConfig,
    SessionState,
    SpiFaultInjector,
    StateChangeEvent,
)
from repro.hardware.device import UwbRadarDevice
from repro.hardware.driver import FrameStream, XepDriver
from repro.hardware.spi import SpiBus

FRAME_RATE = 25.0  # div 4

# Wire-transaction cost of startup and of one streamed frame (see
# repro.fleet.service); used to aim injected faults at a stream time.
TX_STARTUP = 5
TX_PER_FRAME = 7


def fault_wire_factory(at_s: float, burst: int):
    fault_tx = TX_STARTUP + TX_PER_FRAME * int(at_s * FRAME_RATE)
    return lambda device: SpiFaultInjector(device, fault_at=(fault_tx,), burst=burst)


def transitions(session):
    return [
        (e.old_state, e.new_state)
        for e in session.events
        if isinstance(e, StateChangeEvent)
    ]


class TestCleanLifecycle:
    def test_serial_run_walks_the_state_machine(self, fleet_trace):
        session = DetectorSession("s0", fleet_trace.frames)
        assert session.state is SessionState.INIT
        session.run_serial()
        assert transitions(session) == [
            ("init", "cold_start"),
            ("cold_start", "running"),
            ("running", "stopped"),
        ]
        assert not session.active

    def test_clean_run_processes_every_world_frame(self, fleet_trace):
        session = DetectorSession("s0", fleet_trace.frames)
        session.run_serial()
        n_world = fleet_trace.frames.shape[0]
        assert session.frames_processed == n_world
        assert session.health()["dropped_fifo"] == 0
        assert session.health()["dropped_queue"] == 0

    def test_blinks_match_single_session_pipeline_exactly(self, fleet_trace):
        """The session reports the same blinks, at the same apex times,
        as the plain device -> driver -> detector loop on the same world
        (the single-session pipeline of examples/realtime_device_stream)."""
        session = DetectorSession("eq", fleet_trace.frames)
        session.run_serial()

        frames = fleet_trace.frames
        device = UwbRadarDevice(frame_source=frames)
        driver = XepDriver(SpiBus(device), n_bins=frames.shape[1])
        driver.configure(frame_rate_div=4, tx_power=0xFF)
        driver.start()
        detector = RealTimeBlinkDetector(frame_rate_hz=FRAME_RATE)
        for _, frame in FrameStream(driver, device, n_frames=frames.shape[0]):
            detector.process_frame(frame)
        detector.finish()

        assert session.blink_times_s == [e.time_s for e in detector.events]
        assert len(session.blink_times_s) > 0  # the comparison is not vacuous

    def test_blinks_close_to_offline_float_pipeline(self, fleet_trace):
        """Against the offline pipeline on the *raw float* frames the only
        difference is the chip's int16 quantisation, so detection must
        still score perfectly within the paper's matching tolerance."""
        session = DetectorSession("eq", fleet_trace.frames)
        session.run_serial()
        offline = BlinkRadar(frame_rate_hz=FRAME_RATE).detect(fleet_trace.frames)
        score = score_blink_detection(list(offline.event_times_s), session.blink_times_s)
        assert score.f1 == 1.0

    def test_health_snapshot_keys(self, fleet_trace):
        session = DetectorSession("s0", fleet_trace.frames)
        session.run_serial()
        health = session.health()
        assert health["state"] == "stopped"
        assert health["time_s"] == pytest.approx(fleet_trace.frames.shape[0] / FRAME_RATE)
        assert health["frames_world"] == fleet_trace.frames.shape[0]
        assert health["blinks"] == len(session.blink_events)
        assert health["restarts"] == 0

    def test_double_start_rejected(self, fleet_trace):
        session = DetectorSession("s0", fleet_trace.frames)
        session.start()
        with pytest.raises(RuntimeError):
            session.start()


class TestFaultRecovery:
    def test_recovers_through_degraded_to_running(self, fleet_trace):
        session = DetectorSession(
            "flt", fleet_trace.frames, wire_factory=fault_wire_factory(4.0, burst=4)
        )
        session.run_serial()
        seq = transitions(session)
        assert ("running", "degraded") in seq  # fault landed mid-stream
        assert ("degraded", "cold_start") in seq
        # The post-recovery cold start completes: RUNNING is re-entered
        # after the DEGRADED spell.
        recovered_at = seq.index(("degraded", "cold_start"))
        assert ("cold_start", "running") in seq[recovered_at:]
        assert session.health()["state"] == "stopped"

    def test_restart_event_counts_attempts(self, fleet_trace):
        # Burst of 4: the poll fault consumes one corrupted transaction,
        # then three reset attempts fail before the fourth succeeds.
        session = DetectorSession(
            "flt", fleet_trace.frames, wire_factory=fault_wire_factory(4.0, burst=4)
        )
        session.run_serial()
        restarts = [e for e in session.events if isinstance(e, RestartEvent)]
        assert [e.reason for e in restarts] == ["spi_fault"]
        assert restarts[0].attempts == 4
        assert session.restarts == 1

    def test_every_world_frame_is_accounted_for(self, fleet_trace):
        """processed + fifo-dropped == world frames: losses are counted,
        never silent, and resets never replay the world."""
        session = DetectorSession(
            "flt", fleet_trace.frames, wire_factory=fault_wire_factory(4.0, burst=4)
        )
        session.run_serial()
        n_world = fleet_trace.frames.shape[0]
        dropped = session.health()["dropped_fifo"]
        assert dropped > 0  # the DEGRADED spell really lost frames
        assert session.frames_processed + dropped == n_world
        assert session.frames_processed < n_world

    def test_exhausted_burst_is_terminal(self, fleet_trace):
        config = SessionConfig(max_recovery_attempts=2)
        session = DetectorSession(
            "dead",
            fleet_trace.frames,
            config=config,
            wire_factory=fault_wire_factory(4.0, burst=30),
        )
        session.run_serial()
        terminal = [e for e in session.events if isinstance(e, FaultEvent) and e.terminal]
        assert len(terminal) == 1
        assert session.state is SessionState.STOPPED
        assert session.restarts == 0  # it never made it back
        # It died mid-world, well before the source ran dry.
        assert session.health()["frames_world"] < fleet_trace.frames.shape[0]


class TestControlRequests:
    def _drive(self, session, n):
        done = 0
        while done < n and session.active and not session.draining:
            item = session.produce()
            if item is not None:
                session.process(item)
                done += 1

    def test_manual_restart(self, fleet_trace):
        session = DetectorSession("op", fleet_trace.frames)
        session.start()
        self._drive(session, 60)
        session.request_restart()
        while session.produce() is not None:
            pass  # the request is honoured on the next produce
        restarts = [e for e in session.events if isinstance(e, RestartEvent)]
        assert [e.reason for e in restarts] == ["manual"]
        assert session.state is SessionState.COLD_START

    def test_request_stop(self, fleet_trace):
        session = DetectorSession("op", fleet_trace.frames)
        session.start()
        self._drive(session, 10)
        session.request_stop()
        assert session.produce() is None
        assert session.state is SessionState.STOPPED
        assert not session.active

    def test_stale_generation_frames_are_flushed(self, fleet_trace):
        session = DetectorSession("op", fleet_trace.frames)
        session.start()
        backlog = []
        while len(backlog) < 5:
            item = session.produce()
            if item is not None:
                backlog.append(item)
        session.request_restart()
        assert session.produce() is None  # the restart consumed the round
        processed_before = session.frames_processed
        for item in backlog:
            session.process(item)
        assert session.frames_processed == processed_before
        assert session.health()["blinks"] == 0
        stale = session.metrics.counter("session.op.dropped_stale").value
        assert stale == len(backlog)


class TestDrowsyAlerting:
    def _session(self, frames):
        config = SessionConfig(drowsy_rate_threshold_bpm=30.0, drowsy_window_s=4.0)
        return DetectorSession("drz", frames, config=config)

    def test_high_rate_raises_one_alert_per_window(self, fleet_trace):
        session = self._session(fleet_trace.frames)
        # 3 blinks in a 4 s window = 45/min, past the 30/min threshold.
        for k, t in enumerate([4.0, 4.5, 5.0, 5.5, 6.0, 6.5]):
            session._on_blink(t, frame_index=int(t * FRAME_RATE), prominence=1.0)
        alerts = [e for e in session.events if isinstance(e, DrowsyAlertEvent)]
        assert len(alerts) == 1  # refractory: one alert per window
        assert alerts[0].rate_bpm >= 30.0
        assert alerts[0].window_s == 4.0

    def test_no_alert_before_window_fills(self, fleet_trace):
        session = self._session(fleet_trace.frames)
        for t in [0.5, 1.0, 1.5, 2.0]:  # early burst, window not yet filled
            session._on_blink(t, frame_index=int(t * FRAME_RATE), prominence=1.0)
        assert not [e for e in session.events if isinstance(e, DrowsyAlertEvent)]


class TestValidation:
    def test_frames_must_be_2d(self):
        with pytest.raises(ValueError):
            DetectorSession("bad", np.zeros(16, dtype=complex))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(recovery_backoff_frames=0)
        with pytest.raises(ValueError):
            SessionConfig(max_recovery_attempts=0)
        with pytest.raises(ValueError):
            SessionConfig(fifo_frames=0)

"""FleetService end-to-end: concurrent sessions, fault recovery, metrics,
and scheduler-vs-serial equivalence."""

import json

import pytest

from repro.fleet import (
    DetectorSession,
    FleetService,
    RestartEvent,
    StateChangeEvent,
    VehicleSpec,
)


def session_transitions(service, session_id):
    return [
        (e.old_state, e.new_state)
        for e in service.events_of(StateChangeEvent)
        if e.session_id == session_id
    ]


class TestVehicleSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            VehicleSpec("v", duration_s=0.0)
        with pytest.raises(ValueError):
            VehicleSpec("v", duration_s=10.0, fault_at_s=10.0)
        with pytest.raises(ValueError):
            VehicleSpec("v", duration_s=10.0, fault_at_s=-1.0)

    def test_duplicate_vehicle_rejected(self):
        service = FleetService()
        service.add_vehicle(VehicleSpec("v00", duration_s=4.0, seed=1))
        with pytest.raises(ValueError):
            service.add_vehicle(VehicleSpec("v00", duration_s=4.0, seed=2))

    def test_run_without_sessions_rejected(self):
        with pytest.raises(RuntimeError):
            FleetService().run()


class TestFleetRun:
    @pytest.fixture(scope="class")
    def service(self, fleet_trace, fleet_trace_b):
        service = FleetService(workers=4)
        service.add_session("v00", fleet_trace.frames)
        service.add_session("v01", fleet_trace_b.frames)
        service.run()
        return service

    def test_all_sessions_stop_clean(self, service):
        health = service.health()
        assert set(health) == {"v00", "v01"}
        for snapshot in health.values():
            assert snapshot["state"] == "stopped"
            assert snapshot["restarts"] == 0
            assert snapshot["dropped_fifo"] == 0
            assert snapshot["dropped_queue"] == 0

    def test_scheduled_run_equals_serial_run(self, service, fleet_trace):
        """The scheduler must not change detection results: a session run
        through the worker pool reports the same blinks as one driven
        frame-by-frame on a single thread."""
        reference = DetectorSession("ref", fleet_trace.frames)
        reference.run_serial()
        assert service.sessions["v00"].blink_times_s == reference.blink_times_s
        assert len(reference.blink_times_s) > 0

    def test_metrics_snapshot_is_json_ready(self, service):
        snap = service.metrics_snapshot()
        assert json.loads(json.dumps(snap)) == snap
        n_world = sum(s._n_world for s in service.sessions.values())
        assert snap["counters"]["fleet.frames_processed"] == n_world
        assert snap["histograms"]["fleet.latency_s"]["count"] == n_world
        assert snap["gauges"]["fleet.wall_s"] > 0
        assert snap["gauges"]["fleet.throughput_fps"] > 0

    def test_latency_percentiles_ordered(self, service):
        latency = service.metrics_snapshot()["histograms"]["fleet.latency_s"]
        assert latency["min"] <= latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["p99"] <= latency["max"]


class TestFaultedFleet:
    @pytest.fixture(scope="class")
    def service(self):
        service = FleetService(workers=4)
        service.add_vehicle(VehicleSpec("ok", duration_s=12.0, seed=3))
        service.add_vehicle(VehicleSpec("hurt", duration_s=12.0, seed=4, fault_at_s=5.0))
        service.run()
        return service

    def test_faulted_session_recovers(self, service):
        seq = session_transitions(service, "hurt")
        # Entry state depends on worker lag (the RUNNING mirror is
        # worker-side), but the DEGRADED spell itself must be recorded.
        assert any(new == "degraded" for _, new in seq)
        recovered_at = seq.index(("degraded", "cold_start"))
        assert ("cold_start", "running") in seq[recovered_at:]
        assert seq[-1][1] == "stopped"

    def test_restart_and_drop_counters_nonzero(self, service):
        restarts = [e for e in service.events_of(RestartEvent) if e.session_id == "hurt"]
        assert len(restarts) == 1
        assert restarts[0].reason == "spi_fault"
        counters = service.metrics_snapshot()["counters"]
        assert counters["fleet.restarts"] == 1
        assert counters["fleet.dropped_fifo"] > 0
        assert counters["session.hurt.dropped_fifo"] > 0
        assert counters["fleet.faults"] >= 1

    def test_healthy_neighbour_unaffected(self, service):
        health = service.health()
        assert health["ok"]["restarts"] == 0
        assert health["ok"]["dropped_fifo"] == 0
        n_world = service.sessions["ok"]._n_world
        assert health["ok"]["frames_processed"] == n_world

    def test_faulted_frames_accounted(self, service):
        """World frames either reached the detector or were counted lost
        (FIFO drops + frames queued before the restart, flushed stale)."""
        session = service.sessions["hurt"]
        counters = service.metrics_snapshot()["counters"]
        # Either drop counter may be absent: a fast detector can drain the
        # queue before the fault (no stale frames) — absent means zero.
        accounted = (
            session.frames_processed
            + counters.get("session.hurt.dropped_fifo", 0)
            + counters.get("session.hurt.dropped_stale", 0)
        )
        assert accounted == session._n_world


class TestOperatorControl:
    def test_manual_restart_before_run(self, fleet_trace):
        service = FleetService(workers=2)
        service.add_session("v00", fleet_trace.frames)
        service.restart("v00")  # honoured on the first produce
        service.run()
        restarts = service.events_of(RestartEvent)
        assert [e.reason for e in restarts] == ["manual"]
        assert service.health()["v00"]["state"] == "stopped"

    def test_stop_request(self, fleet_trace):
        service = FleetService(workers=2)
        service.add_session("v00", fleet_trace.frames)
        service.stop("v00")
        service.run()
        health = service.health()["v00"]
        assert health["state"] == "stopped"
        assert health["frames_processed"] == 0

"""FleetScheduler: backpressure, per-session ordering, drain guarantees.

A duck-typed fake session keeps these tests about the *scheduler* —
deterministic and detector-free."""

import threading

import pytest

from repro.fleet import FleetScheduler, MetricsRegistry, SessionState
from repro.fleet.events import FrameDropEvent


class FakeSession:
    """Minimal stand-in honouring the scheduler's session contract."""

    def __init__(self, session_id: str, n_items: int):
        self.session_id = session_id
        self.n_items = n_items
        self.state = SessionState.INIT
        self.draining = False
        self.closed = False
        self.produced = 0
        self.processed: list[int] = []
        self.events = []
        self.time_s = 0.0
        self._in_process = 0
        self._overlap = False

    @property
    def active(self):
        return self.state is not SessionState.STOPPED

    def start(self):
        self.state = SessionState.RUNNING

    def produce(self):
        if self.produced >= self.n_items:
            self.draining = True
            return None
        self.produced += 1
        return self.produced - 1

    def process(self, item, enqueued_at=None):
        # Flag any concurrent entry: the claim protocol must serialize us.
        n = self._in_process = self._in_process + 1
        if n > 1:
            self._overlap = True
        self.processed.append(item)
        self._in_process -= 1

    def process_batch(self, items, enqueued_ats=None):
        if enqueued_ats is None:
            enqueued_ats = [None] * len(items)
        for item, enqueued_at in zip(items, enqueued_ats):
            self.process(item, enqueued_at=enqueued_at)

    def close(self):
        self.closed = True
        self.state = SessionState.STOPPED

    def _emit(self, event):
        self.events.append(event)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FleetScheduler([FakeSession("a", 1)], workers=0)
        with pytest.raises(ValueError):
            FleetScheduler([FakeSession("a", 1)], queue_depth=0)
        # Empty construction is legal (serve mode attaches sessions at
        # runtime); pumping an empty fleet is the error.
        with pytest.raises(ValueError):
            FleetScheduler([]).run()


class TestScheduling:
    def test_processes_everything_in_order(self):
        sessions = [FakeSession(f"s{k}", 200) for k in range(5)]
        scheduler = FleetScheduler(sessions, workers=4)
        scheduler.run()
        for s in sessions:
            assert s.processed == list(range(200))  # per-session FIFO, lossless
            assert not s._overlap  # never two workers on one session
            assert s.closed
            assert not s.active
        assert scheduler.queue_depths() == {s.session_id: 0 for s in sessions}

    def test_starts_init_sessions(self):
        session = FakeSession("s0", 3)
        FleetScheduler([session], workers=1).run()
        assert session.produced == 3

    def test_max_rounds_bounds_the_pump(self):
        session = FakeSession("s0", 1000)
        scheduler = FleetScheduler([session], workers=1)
        rounds = scheduler.run(max_rounds=10)
        assert rounds == 10
        assert session.produced == 10
        assert session.processed == list(range(10))  # drained before return
        assert session.closed

    def test_single_worker_many_sessions(self):
        sessions = [FakeSession(f"s{k}", 50) for k in range(4)]
        FleetScheduler(sessions, workers=1).run()
        for s in sessions:
            assert s.processed == list(range(50))


class TestBackpressure:
    def test_enqueue_drops_oldest(self):
        """Deterministic drop-oldest: fill a depth-3 queue without workers."""
        session = FakeSession("s0", 10)
        metrics = MetricsRegistry()
        scheduler = FleetScheduler([session], queue_depth=3, metrics=metrics)
        slot = scheduler._slots[0]
        for item in range(10):
            scheduler._enqueue(slot, item)
        assert [item for item, _ in slot.queue] == [7, 8, 9]  # freshest wins
        assert slot.dropped == 7
        assert scheduler.dropped() == {"s0": 7}
        assert metrics.counter("session.s0.dropped_queue").value == 7
        assert metrics.counter("fleet.dropped_queue").value == 7
        drops = [e for e in session.events if isinstance(e, FrameDropEvent)]
        assert len(drops) == 7
        assert all(e.where == "queue" for e in drops)

    def test_slow_consumer_loses_only_its_own_frames(self):
        """One stalled session must not make a healthy one drop.

        The pump is paced so the (instant) fast consumer genuinely keeps
        up; the slow consumer blocks on a gate until the pump is done.
        """
        slow = FakeSession("slow", 100)
        fast = FakeSession("fast", 100)
        gate = threading.Event()

        original = slow.process.__func__

        def stalled(item, enqueued_at=None):
            gate.wait(timeout=5.0)
            original(slow, item, enqueued_at)

        slow.process = stalled
        scheduler = FleetScheduler([slow, fast], workers=2, queue_depth=16, pace_s=0.002)
        runner = threading.Thread(target=scheduler.run)
        runner.start()
        runner.join(timeout=2.0)  # let the pump overflow the stalled queue
        gate.set()
        runner.join(timeout=10.0)
        assert not runner.is_alive()
        dropped = scheduler.dropped()
        assert dropped["fast"] == 0
        assert dropped["slow"] > 0  # the stall overflowed only its own queue
        assert fast.processed == list(range(100))
        # Whatever survived the slow queue was still processed in order.
        assert slow.processed == sorted(slow.processed)

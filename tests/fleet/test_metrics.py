"""The metrics registry: exact aggregates, windowed percentiles, one kind
per name, JSON-clean export, and safety under concurrent writers."""

import json
import math
import threading

import pytest

from repro.fleet.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_concurrent_increments_are_not_lost(self):
        c = Counter()

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(3.5)
        g.add(-1.0)
        assert g.value == 2.5


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram()
        for v in [2.0, 1.0, 4.0, 3.0]:
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        snap = h.snapshot()
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["sum"] == pytest.approx(10.0)

    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(101):  # 0..100 → percentile q is simply q
            h.observe(float(v))
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(100) == 100.0

    def test_percentile_window_is_recent(self):
        h = Histogram(window=10)
        for v in range(100):
            h.observe(float(v))
        # Aggregates cover the whole stream, percentiles only the window.
        assert h.count == 100
        assert h.snapshot()["min"] == 0.0
        assert h.percentile(0) == 90.0  # oldest retained observation

    def test_empty_histogram(self):
        h = Histogram()
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.mean)
        assert h.snapshot() == {"count": 0}

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            Histogram(window=0)
        with pytest.raises(ValueError):
            Histogram().percentile(101)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_name_keeps_one_kind(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_as_dict_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.counter("frames").inc(7)
        reg.gauge("depth").set(3)
        reg.histogram("latency").observe(0.01)
        out = reg.as_dict()
        assert json.loads(json.dumps(out)) == out
        assert out["counters"]["frames"] == 7
        assert out["gauges"]["depth"] == 3.0
        assert out["histograms"]["latency"]["count"] == 1

"""Prometheus text exposition from the metrics registry.

The renderer's contract: every instrument appears under a sanitised,
properly-typed family; per-session names fold into labelled series; and
the output is byte-deterministic so a scrape diff means a metrics
change, never iteration-order noise.
"""

from __future__ import annotations

import pytest

from repro.fleet.metrics import MetricsRegistry


def _lines(text: str) -> list[str]:
    return text.splitlines()


class TestCounters:
    def test_counter_gets_total_suffix_and_type(self):
        registry = MetricsRegistry()
        registry.counter("fleet.frames_processed").inc(7)
        text = registry.render_prometheus()
        assert "# TYPE repro_fleet_frames_processed_total counter" in _lines(text)
        assert "repro_fleet_frames_processed_total 7" in _lines(text)

    def test_namespace_is_configurable(self):
        registry = MetricsRegistry()
        registry.counter("fleet.blinks").inc()
        assert "blinkradar_fleet_blinks_total 1" in registry.render_prometheus("blinkradar")


class TestGauges:
    def test_gauge_renders_plain(self):
        registry = MetricsRegistry()
        registry.gauge("fleet.throughput_fps").set(123.5)
        text = registry.render_prometheus()
        assert "# TYPE repro_fleet_throughput_fps gauge" in _lines(text)
        assert "repro_fleet_throughput_fps 123.5" in _lines(text)

    def test_integral_floats_collapse(self):
        registry = MetricsRegistry()
        registry.gauge("g.depth").set(3.0)
        assert "repro_g_depth 3" in _lines(registry.render_prometheus())


class TestHistograms:
    def test_histogram_renders_as_summary(self):
        registry = MetricsRegistry()
        h = registry.histogram("fleet.latency_s")
        for v in (0.01, 0.02, 0.03, 0.04):
            h.observe(v)
        text = registry.render_prometheus()
        assert "# TYPE repro_fleet_latency_s summary" in _lines(text)
        assert 'repro_fleet_latency_s{quantile="0.5"}' in text
        assert 'repro_fleet_latency_s{quantile="0.95"}' in text
        assert 'repro_fleet_latency_s{quantile="0.99"}' in text
        assert "repro_fleet_latency_s_sum 0.1" in text
        assert "repro_fleet_latency_s_count 4" in _lines(text)

    def test_empty_histogram_renders_nan_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("fleet.latency_s")
        text = registry.render_prometheus()
        assert 'repro_fleet_latency_s{quantile="0.5"} NaN' in _lines(text)
        assert "repro_fleet_latency_s_count 0" in _lines(text)


class TestSessionFolding:
    def test_per_session_names_become_labels(self):
        registry = MetricsRegistry()
        registry.counter("session.v00.frames_processed").inc(10)
        registry.counter("session.v01.frames_processed").inc(20)
        text = registry.render_prometheus()
        lines = _lines(text)
        assert 'repro_session_frames_processed_total{session="v00"} 10' in lines
        assert 'repro_session_frames_processed_total{session="v01"} 20' in lines
        # One family, one TYPE line — not one per vehicle.
        assert text.count("# TYPE repro_session_frames_processed_total counter") == 1

    def test_session_histograms_fold_with_quantile_labels(self):
        registry = MetricsRegistry()
        registry.histogram("session.v00.latency_s").observe(0.5)
        text = registry.render_prometheus()
        assert 'repro_session_latency_s{session="v00",quantile="0.5"} 0.5' in _lines(text)
        assert 'repro_session_latency_s_count{session="v00"} 1' in _lines(text)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter('session.veh"7.blinks').inc()
        text = registry.render_prometheus()
        assert 'session="veh\\"7"' in text


class TestDeterminism:
    def test_identical_registries_render_identical_bytes(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("fleet.blinks").inc(3)
            registry.gauge("session.v01.queue_depth").set(2)
            registry.counter("session.v00.blinks").inc(1)
            registry.histogram("fleet.latency_s").observe(0.25)
            return registry

        assert build().render_prometheus() == build().render_prometheus()

    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc()
        text = registry.render_prometheus()
        assert text.index("repro_a_first_total") < text.index("repro_z_last_total")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestNameSanitisation:
    def test_illegal_characters_become_underscores(self):
        registry = MetricsRegistry()
        registry.counter("fleet.frames-received/raw").inc()
        assert "repro_fleet_frames_received_raw_total 1" in registry.render_prometheus()

    def test_kind_collision_after_folding_raises(self):
        registry = MetricsRegistry()
        registry.counter("session.a.x_total").inc()
        registry.gauge("session.b.x_total_total")
        with pytest.raises(ValueError):
            registry.render_prometheus()

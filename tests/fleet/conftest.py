"""Fleet-suite fixtures: short cached traces (full sessions are run many
times here, so the worlds are kept small)."""

from __future__ import annotations

import pytest

from repro.physio import ParticipantProfile
from repro.sim import Scenario, simulate


def _trace(vehicle_id: str, seed: int, duration_s: float = 12.0):
    scenario = Scenario(
        participant=ParticipantProfile(vehicle_id),
        road="smooth_highway",
        state="awake",
        duration_s=duration_s,
    )
    return simulate(scenario, seed=seed)


@pytest.fixture(scope="session")
def fleet_trace():
    """A 12 s highway drive: long enough for cold start + several blinks."""
    return _trace("FLT", seed=11)


@pytest.fixture(scope="session")
def fleet_trace_b():
    """A second, independent 12 s drive (different participant + seed)."""
    return _trace("FLB", seed=29)

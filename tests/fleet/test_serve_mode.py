"""Scheduler serve mode: the public external-ingestion surface.

Pump mode owns production; serve mode receives frames from outside
(the network gateway). These tests pin the contract the gateway builds
on: attach/detach at runtime, non-blocking submit with drop-oldest
backpressure, drained/idle visibility, and strict separation of the two
modes.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.fleet.metrics import MetricsRegistry
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.session import DetectorSession, SessionState
from repro.gateway.ingest import IngestSession


def _ingest_session(session_id: str, metrics=None, n_bins: int = 16):
    session = IngestSession(
        session_id, n_bins=n_bins, frame_rate_hz=25.0, metrics=metrics
    )
    session.start()
    return session


def _frames(session, count: int, start: int = 0):
    rng = np.random.default_rng(5)
    for k in range(start, start + count):
        frame = (rng.standard_normal(session.n_bins) + 1j).astype(np.complex64)
        yield session.make_item(k / 25.0, frame)


def _wait_drained(scheduler, session_id: str, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not scheduler.drained(session_id):
        assert time.monotonic() < deadline, "scheduler never drained"
        time.sleep(0.002)


class TestServeMode:
    def test_submit_processes_through_worker_pool(self):
        metrics = MetricsRegistry()
        scheduler = FleetScheduler([], workers=2, metrics=metrics)
        scheduler.start()
        try:
            session = _ingest_session("s0", metrics)
            scheduler.attach(session)
            for item in _frames(session, 40):
                assert scheduler.submit("s0", item)
            _wait_drained(scheduler, "s0")
            assert session.frames_processed == 40
            assert scheduler.detach("s0") == 0
            session.close()
        finally:
            scheduler.stop()

    def test_empty_scheduler_is_legal_in_serve_mode(self):
        scheduler = FleetScheduler([], workers=1)
        scheduler.start()
        assert scheduler.idle()
        scheduler.stop()

    def test_submit_drop_oldest_backpressure(self):
        metrics = MetricsRegistry()
        scheduler = FleetScheduler([], workers=1, queue_depth=4, metrics=metrics)
        session = _ingest_session("s1", metrics)
        # Workers not started: the queue can only fill.
        scheduler.attach(session)
        results = [scheduler.submit("s1", item) for item in _frames(session, 10)]
        assert results[:4] == [True] * 4
        assert results[4:] == [False] * 6
        assert metrics.counter("session.s1.dropped_queue").value == 6
        assert metrics.counter("fleet.dropped_queue").value == 6
        assert scheduler.queue_depths()["s1"] == 4
        session.close()

    def test_submit_unknown_session_raises(self):
        scheduler = FleetScheduler([], workers=1)
        with pytest.raises(KeyError):
            scheduler.submit("nope", (1, 0.0, np.zeros(4, dtype=np.complex64)))

    def test_attach_duplicate_id_rejected(self):
        scheduler = FleetScheduler([], workers=1)
        session = _ingest_session("dup")
        scheduler.attach(session)
        with pytest.raises(ValueError):
            scheduler.attach(_ingest_session("dup"))
        session.close()

    def test_detach_reports_discarded_backlog(self):
        scheduler = FleetScheduler([], workers=1, queue_depth=64)
        session = _ingest_session("s2")
        scheduler.attach(session)
        for item in _frames(session, 7):
            scheduler.submit("s2", item)
        assert scheduler.detach("s2") == 7
        with pytest.raises(KeyError):
            scheduler.drained("s2")
        session.close()

    def test_stop_drains_but_does_not_close_sessions(self):
        metrics = MetricsRegistry()
        scheduler = FleetScheduler([], workers=2, metrics=metrics)
        scheduler.start()
        session = _ingest_session("s3", metrics)
        scheduler.attach(session)
        for item in _frames(session, 25):
            scheduler.submit("s3", item)
        scheduler.stop()
        # Everything queued was processed; the session stays the
        # caller's to close.
        assert session.frames_processed == 25
        assert session.state is not SessionState.STOPPED
        session.close()
        assert session.state is SessionState.STOPPED

    def test_stop_is_idempotent(self):
        scheduler = FleetScheduler([], workers=1)
        scheduler.start()
        scheduler.stop()
        scheduler.stop()

    def test_run_refused_while_serving(self, fleet_trace):
        scheduler = FleetScheduler([], workers=1)
        scheduler.start()
        try:
            with pytest.raises(RuntimeError):
                scheduler.run()
        finally:
            scheduler.stop()

    def test_run_still_requires_sessions(self):
        with pytest.raises(ValueError):
            FleetScheduler([], workers=1).run()

    def test_start_twice_rejected(self):
        scheduler = FleetScheduler([], workers=1)
        scheduler.start()
        try:
            with pytest.raises(RuntimeError):
                scheduler.start()
        finally:
            scheduler.stop()

    def test_submit_is_thread_safe_under_concurrent_producers(self):
        metrics = MetricsRegistry()
        scheduler = FleetScheduler([], workers=2, queue_depth=4096, metrics=metrics)
        scheduler.start()
        sessions = [_ingest_session(f"t{i}", metrics) for i in range(3)]
        try:
            for session in sessions:
                scheduler.attach(session)

            def producer(session):
                for item in _frames(session, 100):
                    scheduler.submit(session.session_id, item)

            threads = [threading.Thread(target=producer, args=(s,)) for s in sessions]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for session in sessions:
                _wait_drained(scheduler, session.session_id)
                assert session.frames_processed == 100
        finally:
            scheduler.stop()
            for session in sessions:
                session.close()

    def test_generation_stale_frames_flushed_on_restart(self):
        metrics = MetricsRegistry()
        scheduler = FleetScheduler([], workers=1, queue_depth=64, metrics=metrics)
        session = _ingest_session("g0", metrics)
        scheduler.attach(session)
        stale = list(_frames(session, 5))
        # A restart bumps the generation; frames stamped before it are
        # flushed as stale by the worker, not fed to the new detector.
        session.request_restart()
        session.produce()
        for item in stale:
            scheduler.submit("g0", item)
        scheduler.start()
        _wait_drained(scheduler, "g0")
        scheduler.stop()
        assert session.frames_processed == 0
        assert metrics.counter("session.g0.dropped_stale").value == 5
        session.close()


class TestIngestSession:
    def test_declared_rate_wins_over_register_quantisation(self):
        session = IngestSession("r0", n_bins=8, frame_rate_hz=17.3)
        assert session.frame_rate_hz == 17.3
        session.close()

    def test_produce_is_inert(self):
        session = _ingest_session("r1")
        assert session.produce() is None
        session.close()

    def test_make_item_stamps_current_generation(self):
        session = _ingest_session("r2")
        item = session.make_item(0.0, np.zeros(16, dtype=np.complex64))
        assert item[0] == session.generation
        session.request_restart()
        session.produce()
        item2 = session.make_item(0.04, np.zeros(16, dtype=np.complex64))
        assert item2[0] == session.generation == item[0] + 1
        session.close()

    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            IngestSession("bad", n_bins=0, frame_rate_hz=25.0)
        with pytest.raises(ValueError):
            IngestSession("bad", n_bins=8, frame_rate_hz=0.0)

    def test_is_detector_session(self):
        session = IngestSession("sub", n_bins=8, frame_rate_hz=25.0)
        assert isinstance(session, DetectorSession)
        session.close()

"""``python -m repro store`` subcommands."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.store import Catalog, TraceReader


class TestStoreParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    def test_record_defaults(self):
        args = build_parser().parse_args(["store", "record", "-o", "x.rst"])
        assert args.store_command == "record"
        assert args.road == "smooth_highway"
        assert args.from_trace is None

    def test_verify_takes_many_paths(self):
        args = build_parser().parse_args(["store", "verify", "a.rst", "b.rst", "dir"])
        assert args.paths == ["a.rst", "b.rst", "dir"]


class TestStoreCommands:
    @pytest.fixture
    def recorded(self, tmp_path, capsys):
        out = tmp_path / "drive.rst"
        rc = main([
            "store", "record", "--road", "parked", "--duration", "8",
            "--seed", "6", "-o", str(out),
        ])
        assert rc == 0 and out.exists()
        capsys.readouterr()
        return out

    def test_record_then_info(self, recorded, capsys):
        rc = main(["store", "info", str(recorded)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "format version" in out and "meta.road" in out

    def test_record_then_verify_ok(self, recorded, capsys):
        rc = main(["store", "verify", str(recorded)])
        assert rc == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_convicts_damage(self, recorded, capsys):
        data = bytearray(recorded.read_bytes())
        data[400] ^= 0xFF
        recorded.write_bytes(bytes(data))
        rc = main(["store", "verify", str(recorded)])
        assert rc == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_replay_scores_recording(self, recorded, capsys):
        rc = main(["store", "replay", str(recorded)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "accuracy" in out

    def test_record_from_trace_conversion(self, tmp_path, capsys):
        npz = tmp_path / "t.npz"
        main(["simulate", "--duration", "8", "--road", "parked",
              "--seed", "6", "-o", str(npz)])
        capsys.readouterr()
        rst = tmp_path / "t.rst"
        rc = main(["store", "record", "--from-trace", str(npz), "-o", str(rst)])
        assert rc == 0
        from repro.sim.trace import RadarTrace

        original = RadarTrace.load(npz)
        with TraceReader(rst) as reader:
            assert np.array_equal(reader.frames, original.frames)

    def test_ls_lists_catalog(self, recorded, tmp_path, capsys):
        root = tmp_path / "cat"
        root.mkdir()
        target = root / recorded.name
        target.write_bytes(recorded.read_bytes())
        Catalog(root).add(target)
        capsys.readouterr()
        rc = main(["store", "ls", str(root)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "drive" in out and "1 entries" in out

    def test_verify_walks_catalog_directory(self, recorded, tmp_path, capsys):
        root = tmp_path / "cat"
        root.mkdir()
        target = root / recorded.name
        target.write_bytes(recorded.read_bytes())
        Catalog(root).add(target)
        capsys.readouterr()
        rc = main(["store", "verify", str(root)])
        assert rc == 0
        assert "ok" in capsys.readouterr().out

"""Catalog: manifest atomicity, dedup, and the capture cache."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.physio import ParticipantProfile
from repro.sim import Scenario, simulate
from repro.store import Catalog, StoreError, scenario_key
from repro.store.catalog import MANIFEST_NAME


def small_scenario(seed_label="CAT"):
    return Scenario(
        participant=ParticipantProfile(seed_label),
        duration_s=6.0,
        road="parked",
        state="awake",
        allow_posture_shifts=False,
    )


class TestCatalog:
    def test_import_and_reopen(self, short_trace, tmp_path):
        cat = Catalog(tmp_path / "cat")
        entry = cat.import_trace(short_trace, "lab")
        assert entry.n_frames == short_trace.n_frames
        assert (tmp_path / "cat" / "lab.rst").exists()

        # A fresh Catalog object reads the manifest back identically.
        reopened = Catalog(tmp_path / "cat", create=False)
        assert reopened.names() == ["lab"]
        assert reopened.entry("lab").content_hash == entry.content_hash
        with reopened.open("lab") as reader:
            assert np.array_equal(reader.frames, short_trace.frames)

    def test_dedup_by_content_hash(self, short_trace, tmp_path):
        cat = Catalog(tmp_path / "cat")
        first = cat.import_trace(short_trace, "a")
        second = cat.import_trace(short_trace, "b")
        assert second is first
        assert len(cat) == 1
        assert not (tmp_path / "cat" / "b.rst").exists()

    def test_duplicate_name_rejected(self, short_trace, tmp_path):
        cat = Catalog(tmp_path / "cat")
        cat.import_trace(short_trace, "x")
        other = simulate(small_scenario(), seed=2)
        with pytest.raises(StoreError, match="already has an entry"):
            cat.import_trace(other, "x")

    def test_manifest_rewrite_is_atomic(self, short_trace, tmp_path):
        # The manifest is replaced via a temp file; no *.tmp survivors,
        # and the final file is complete JSON after every mutation.
        root = tmp_path / "cat"
        cat = Catalog(root)
        cat.import_trace(short_trace, "one")
        cat.import_trace(simulate(small_scenario(), seed=5), "two")
        cat.remove("one")
        leftovers = [p.name for p in root.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert sorted(manifest["entries"]) == ["two"]

    def test_concurrent_manifest_writers_never_tear(self, short_trace, tmp_path):
        # Two catalog handles rewriting the manifest at the same moment
        # must not crash: each writer uses its own temp file, so one
        # os.replace can never steal the other's temp out from under it.
        # (Lost updates between independent handles are still possible —
        # callers that need serialization hold their own lock, as the
        # gateway does — but a concurrent write must never raise or
        # leave a torn manifest.)
        import threading
        from concurrent.futures import ThreadPoolExecutor

        from repro.store import write_trace

        root = tmp_path / "cat"
        root.mkdir()
        other = simulate(small_scenario("CC2"), seed=9)
        paths = [root / "a.rst", root / "b.rst"]
        write_trace(paths[0], short_trace)
        write_trace(paths[1], other)

        barrier = threading.Barrier(2)

        def register(path):
            cat = Catalog(root)
            barrier.wait()
            for _ in range(20):
                cat._write_manifest()
            cat.add(path)

        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(register, p) for p in paths]
            for future in futures:
                future.result()  # re-raises any writer crash

        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert set(manifest["entries"]) <= {"a", "b"}
        assert len(manifest["entries"]) >= 1
        leftovers = [p.name for p in root.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_add_registers_existing_file(self, short_trace, tmp_path):
        from repro.store import write_trace

        root = tmp_path / "cat"
        cat = Catalog(root)
        write_trace(root / "dropped-in.rst", short_trace)
        entry = cat.add(root / "dropped-in.rst")
        assert entry.name == "dropped-in"
        assert Catalog(root, create=False).names() == ["dropped-in"]

    def test_add_outside_directory_rejected(self, short_trace, tmp_path):
        from repro.store import write_trace

        cat = Catalog(tmp_path / "cat")
        outside = tmp_path / "elsewhere.rst"
        write_trace(outside, short_trace)
        with pytest.raises(StoreError, match="outside the catalog"):
            cat.add(outside)

    def test_get_or_simulate_caches(self, tmp_path):
        scenario = small_scenario()
        calls = []

        def counting_simulate(sc, seed):
            calls.append(seed)
            return simulate(sc, seed=seed)

        cat = Catalog(tmp_path / "cache")
        first = cat.get_or_simulate(scenario, 3, simulate_fn=counting_simulate)
        second = cat.get_or_simulate(scenario, 3, simulate_fn=counting_simulate)
        assert calls == [3]  # second request replayed from disk
        assert np.array_equal(first.frames, second.frames)
        assert first.frames.dtype == second.frames.dtype
        assert [e.start_s for e in first.blink_events] == [
            e.start_s for e in second.blink_events
        ]

    def test_get_or_simulate_key_discriminates(self, tmp_path):
        scenario = small_scenario()
        assert scenario_key(scenario, 1) != scenario_key(scenario, 2)
        cat = Catalog(tmp_path / "cache")
        a = cat.get_or_simulate(scenario, 1)
        b = cat.get_or_simulate(scenario, 2)
        assert not np.array_equal(a.frames, b.frames)
        assert len(cat) == 2

    def test_verify_reports_all_entries(self, short_trace, tmp_path):
        cat = Catalog(tmp_path / "cat")
        cat.import_trace(short_trace, "good")
        reports = cat.verify()
        assert len(reports) == 1 and reports[0].ok

        # Damage the file behind the entry: verify must convict it.
        target = cat.path("good")
        data = bytearray(target.read_bytes())
        data[300] ^= 0xFF
        target.write_bytes(bytes(data))
        reports = Catalog(tmp_path / "cat", create=False).verify()
        assert len(reports) == 1 and not reports[0].ok

    def test_verify_flags_missing_file(self, short_trace, tmp_path):
        cat = Catalog(tmp_path / "cat")
        cat.import_trace(short_trace, "gone")
        cat.path("gone").unlink()
        reports = Catalog(tmp_path / "cat", create=False).verify()
        assert any("missing" in e for r in reports for e in r.errors)

    def test_eval_battery_uses_catalog_cache(self, tmp_path, monkeypatch):
        # evaluate_drowsy_battery with a catalog simulates each capture
        # once; a second run is served entirely from disk.
        import repro.eval.runner as runner_mod
        from repro.eval.runner import evaluate_drowsy_battery

        scenario_awake = small_scenario()
        scenario_drowsy = Scenario(
            participant=ParticipantProfile("CAT"),
            duration_s=6.0,
            road="parked",
            state="drowsy",
            allow_posture_shifts=False,
        )
        calls = {"n": 0}
        real_simulate = runner_mod.simulate

        def counting(sc, seed):
            calls["n"] += 1
            return real_simulate(sc, seed=seed)

        monkeypatch.setattr(runner_mod, "simulate", counting)
        cat = Catalog(tmp_path / "battery")
        kwargs = dict(
            train_seeds=[1], test_seeds=[2], window_s=3.0, catalog=cat
        )
        first = evaluate_drowsy_battery(scenario_awake, scenario_drowsy, **kwargs)
        n_first = calls["n"]
        second = evaluate_drowsy_battery(scenario_awake, scenario_drowsy, **kwargs)
        assert calls["n"] == n_first  # all captures replayed, none re-simulated
        assert first == second

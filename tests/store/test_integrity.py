"""Integrity: corruption is caught, crashes are recoverable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import (
    StoreFormatError,
    StoreIntegrityError,
    TraceReader,
    TraceWriter,
)
from repro.store.format import BLOCK_HEADER_SIZE, HEADER_SIZE

from .conftest import synthetic_frames


def write_chunked(path, frames, chunk_frames=64):
    with TraceWriter(
        path, n_bins=frames.shape[1], frame_rate_hz=25.0, chunk_frames=chunk_frames
    ) as writer:
        writer.append_batch(frames)


def flip_byte(path, offset):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestCorruption:
    def test_corrupted_chunk_caught_by_verify_and_raises_on_read(self, tmp_path):
        # The acceptance fixture: one flipped payload byte in the second
        # chunk. verify() localises it; reading that chunk raises; the
        # undamaged chunks still read cleanly.
        frames = synthetic_frames(200, 8, seed=11)
        path = tmp_path / "c.rst"
        write_chunked(path, frames, chunk_frames=64)
        # Chunk payloads start after the 64 B header + 24 B block header;
        # chunk 1 begins one padded chunk (64*(8+8*8) payload) later.
        chunk0_payload = 64 * (8 + 8 * 8)
        chunk1_payload_start = (
            HEADER_SIZE + BLOCK_HEADER_SIZE + chunk0_payload + BLOCK_HEADER_SIZE
        )
        flip_byte(path, chunk1_payload_start + 100)

        with TraceReader(path) as reader:
            report = reader.verify()
            assert not report.ok
            assert any("chunk 1" in e for e in report.errors)
            assert not any("chunk 0" in e for e in report.errors)
            # Undamaged chunk reads fine ...
            assert np.array_equal(reader.read(0, 64), frames[:64])
            # ... the damaged one refuses to hand out bytes.
            with pytest.raises(StoreIntegrityError):
                reader.read(64, 128)

    def test_corrupted_block_header_detected(self, tmp_path):
        frames = synthetic_frames(50, 8, seed=12)
        path = tmp_path / "h.rst"
        write_chunked(path, frames)
        flip_byte(path, HEADER_SIZE + 2)  # inside the first block header
        with pytest.raises((StoreIntegrityError, StoreFormatError)):
            with TraceReader(path) as reader:
                reader.read()

    def test_corrupted_file_header_detected(self, tmp_path):
        frames = synthetic_frames(10, 4, seed=13)
        path = tmp_path / "f.rst"
        write_chunked(path, frames)
        flip_byte(path, 20)  # inside the header body, after the magic
        with pytest.raises(StoreIntegrityError):
            TraceReader(path)

    def test_truncated_file_detected(self, tmp_path):
        frames = synthetic_frames(100, 8, seed=14)
        path = tmp_path / "t.rst"
        write_chunked(path, frames)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 200])
        with pytest.raises(StoreFormatError):
            TraceReader(path)

    def test_content_hash_mismatch_reported(self, tmp_path, monkeypatch):
        # Swap two whole chunks: every per-chunk CRC still passes, only
        # the whole-file content hash (and chunk ordering) can convict.
        frames = synthetic_frames(128, 8, seed=15)
        path = tmp_path / "s.rst"
        write_chunked(path, frames, chunk_frames=64)
        data = bytearray(path.read_bytes())
        chunk_bytes = BLOCK_HEADER_SIZE + 64 * (8 + 8 * 8)
        first = bytes(data[HEADER_SIZE : HEADER_SIZE + chunk_bytes])
        second_start = HEADER_SIZE + chunk_bytes
        second = bytes(data[second_start : second_start + chunk_bytes])
        data[HEADER_SIZE : HEADER_SIZE + chunk_bytes] = second
        data[second_start : second_start + chunk_bytes] = first
        path.write_bytes(bytes(data))
        with TraceReader(path) as reader:
            report = reader.verify()
            assert any("content hash" in e for e in report.errors)


class TestCrashRecovery:
    def test_unfinalized_needs_recover(self, tmp_path):
        frames = synthetic_frames(150, 8, seed=16)
        path = tmp_path / "u.rst"
        writer = TraceWriter(path, n_bins=8, frame_rate_hz=25.0, chunk_frames=64)
        writer.append_batch(frames)
        writer.close(finalize=False)

        with pytest.raises(StoreFormatError, match="never finalized"):
            TraceReader(path)
        with TraceReader(path, recover=True) as reader:
            assert reader.recovered
            assert np.array_equal(reader.frames, frames)

    def test_hard_truncation_keeps_complete_chunks(self, tmp_path):
        # Simulate a power cut mid-chunk: everything before the torn
        # block survives recovery.
        frames = synthetic_frames(192, 8, seed=17)
        path = tmp_path / "k.rst"
        writer = TraceWriter(path, n_bins=8, frame_rate_hz=25.0, chunk_frames=64)
        writer.append_batch(frames)
        writer.close(finalize=False)
        chunk_bytes = BLOCK_HEADER_SIZE + 64 * (8 + 8 * 8)
        keep = HEADER_SIZE + 2 * chunk_bytes + 37  # tears the third chunk
        path.write_bytes(path.read_bytes()[:keep])

        with TraceReader(path, recover=True) as reader:
            assert reader.n_frames == 128
            assert np.array_equal(reader.frames, frames[:128])

    def test_writer_abort_on_exception_leaves_crash_shape(self, tmp_path):
        frames = synthetic_frames(80, 8, seed=18)
        path = tmp_path / "a.rst"
        with pytest.raises(RuntimeError, match="boom"):
            with TraceWriter(path, n_bins=8, frame_rate_hz=25.0, chunk_frames=32) as writer:
                writer.append_batch(frames)
                raise RuntimeError("boom")
        with pytest.raises(StoreFormatError):
            TraceReader(path)
        with TraceReader(path, recover=True) as reader:
            assert np.array_equal(reader.frames, frames)

    def test_recovered_file_content_hash_recomputed(self, tmp_path):
        frames = synthetic_frames(64, 8, seed=19)
        final = tmp_path / "fin.rst"
        crashed = tmp_path / "crash.rst"
        write_chunked(final, frames, chunk_frames=64)
        writer = TraceWriter(crashed, n_bins=8, frame_rate_hz=25.0, chunk_frames=64)
        writer.append_batch(frames)
        writer.close(finalize=False)
        with TraceReader(final) as a, TraceReader(crashed, recover=True) as b:
            assert a.content_hash() == b.content_hash()

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = TraceWriter(tmp_path / "c.rst", n_bins=4, frame_rate_hz=25.0)
        writer.close()
        from repro.store import StoreError

        with pytest.raises(StoreError):
            writer.append(np.zeros(4, dtype=np.complex64))

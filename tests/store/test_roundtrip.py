"""Format round-trip properties: what goes in comes out, bit for bit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import RadarTrace
from repro.store import (
    DEFAULT_CHUNK_FRAMES,
    StoreFormatError,
    TraceReader,
    TraceWriter,
    read_trace,
    write_trace,
)

from .conftest import synthetic_frames


class TestRoundTrip:
    @given(
        n_frames=st.integers(1, 700),
        n_bins=st.integers(1, 64),
        chunk_frames=st.integers(1, 300),
        seed=st.integers(0, 10_000),
        dtype=st.sampled_from(["complex64", "complex128"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_frames_exact(self, tmp_path_factory, n_frames, n_bins, chunk_frames, seed, dtype):
        # The acceptance property: append → read is np.array_equal on the
        # stored dtype, across every chunking of the frame sequence.
        frames = synthetic_frames(n_frames, n_bins, seed, dtype=np.dtype(dtype))
        path = tmp_path_factory.mktemp("rt") / "t.rst"
        with TraceWriter(
            path, n_bins=n_bins, frame_rate_hz=25.0, dtype=dtype, chunk_frames=chunk_frames
        ) as writer:
            for k in range(n_frames):
                writer.append(frames[k])
        with TraceReader(path) as reader:
            assert reader.n_frames == n_frames
            assert np.array_equal(reader.frames, frames)
            assert reader.frames.dtype == np.dtype(dtype)
            assert reader.verify().ok

    def test_timestamps_and_batch_append(self, tmp_path):
        frames = synthetic_frames(600, 16, seed=5)
        stamps = np.arange(600) * 0.04 + 0.123
        path = tmp_path / "b.rst"
        with TraceWriter(path, n_bins=16, frame_rate_hz=25.0, chunk_frames=128) as writer:
            writer.append_batch(frames, stamps)
        with TraceReader(path) as reader:
            assert np.array_equal(reader.timestamps(), stamps)
            assert np.array_equal(reader.frames, frames)
            assert reader.n_chunks == 5  # 600 frames / 128 per chunk

    def test_partial_reads_cross_chunks(self, tmp_path):
        frames = synthetic_frames(300, 8, seed=9)
        path = tmp_path / "p.rst"
        with TraceWriter(path, n_bins=8, frame_rate_hz=25.0, chunk_frames=64) as writer:
            writer.append_batch(frames)
        with TraceReader(path) as reader:
            assert np.array_equal(reader.read(60, 70), frames[60:70])
            assert np.array_equal(reader.read(0, 1), frames[:1])
            assert np.array_equal(reader.read(250), frames[250:])
            assert reader.read(300).shape == (0, 8)
            pairs = list(reader.iter_frames(62, 68))
            assert len(pairs) == 6
            assert np.array_equal(pairs[0][1], frames[62])

    def test_single_chunk_read_is_zero_copy(self, tmp_path):
        frames = synthetic_frames(100, 8, seed=2)
        path = tmp_path / "z.rst"
        with TraceWriter(path, n_bins=8, frame_rate_hz=25.0, chunk_frames=256) as writer:
            writer.append_batch(frames)
        with TraceReader(path) as reader:
            view = reader.read(10, 20)
            assert view.base is not None  # a view into the mmap, not a copy

    def test_metadata_and_labels(self, tmp_path):
        path = tmp_path / "m.rst"
        with TraceWriter(
            path, n_bins=4, frame_rate_hz=25.0, metadata={"road": "parked", "seed": 3}
        ) as writer:
            writer.append(np.zeros(4, dtype=np.complex64))
            writer.set_labels(
                blink_events=[(1.0, 0.2), (2.5, 0.3)],
                state="drowsy",
                eye_bin=7,
                posture_shift_times_s=[4.0],
            )
        with TraceReader(path) as reader:
            assert reader.metadata == {"road": "parked", "seed": 3}
            assert reader.labels is not None
            assert reader.labels["state"] == "drowsy"
            assert reader.labels["eye_bin"] == 7
            assert reader.labels["blink_events"] == [[1.0, 0.2], [2.5, 0.3]]
            assert reader.labels["posture_shift_times_s"] == [4.0]

    def test_no_labels_reads_none(self, tmp_path):
        path = tmp_path / "n.rst"
        with TraceWriter(path, n_bins=4, frame_rate_hz=25.0) as writer:
            writer.append(np.zeros(4, dtype=np.complex64))
        with TraceReader(path) as reader:
            assert reader.labels is None

    def test_trace_round_trip_bit_exact(self, short_trace, tmp_path):
        path = tmp_path / "t.rst"
        write_trace(path, short_trace)
        loaded = read_trace(path)
        assert np.array_equal(loaded.frames, short_trace.frames)
        assert loaded.frames.dtype == short_trace.frames.dtype
        assert np.array_equal(loaded.timestamps_s, short_trace.timestamps_s)
        assert loaded.frame_rate_hz == short_trace.frame_rate_hz
        assert loaded.state == short_trace.state
        assert loaded.eye_bin == short_trace.eye_bin
        assert [(e.start_s, e.duration_s) for e in loaded.blink_events] == [
            (e.start_s, e.duration_s) for e in short_trace.blink_events
        ]
        assert loaded.posture_shift_times_s == short_trace.posture_shift_times_s
        assert loaded.metadata == short_trace.metadata

    def test_radar_trace_save_load_dispatch(self, short_trace, tmp_path):
        # .rst suffix routes through the store; load sniffs magic bytes,
        # so even a store file renamed to .npz comes back intact.
        path = tmp_path / "d.rst"
        short_trace.save(path)
        loaded = RadarTrace.load(path)
        assert np.array_equal(loaded.frames, short_trace.frames)
        renamed = tmp_path / "disguised.npz"
        path.rename(renamed)
        assert np.array_equal(RadarTrace.load(renamed).frames, short_trace.frames)

    def test_empty_recording_round_trips(self, tmp_path):
        path = tmp_path / "e.rst"
        with TraceWriter(path, n_bins=4, frame_rate_hz=25.0):
            pass
        with TraceReader(path) as reader:
            assert reader.n_frames == 0
            assert reader.frames.shape == (0, 4)
            assert reader.verify().ok

    def test_content_hash_stable_across_chunking(self, tmp_path):
        # The hash covers payload bytes in order, so it is a function of
        # the data alone — not of how the writer happened to chunk it.
        frames = synthetic_frames(200, 8, seed=7)
        digests = set()
        for chunk_frames in (1, 37, DEFAULT_CHUNK_FRAMES):
            path = tmp_path / f"h{chunk_frames}.rst"
            with TraceWriter(
                path, n_bins=8, frame_rate_hz=25.0, chunk_frames=chunk_frames
            ) as writer:
                writer.append_batch(frames)
            with TraceReader(path) as reader:
                digests.add(reader.content_hash())
        assert len(digests) == 1

    def test_rejects_wrong_shape_and_dtype(self, tmp_path):
        with TraceWriter(tmp_path / "w.rst", n_bins=8, frame_rate_hz=25.0) as writer:
            with pytest.raises(ValueError):
                writer.append(np.zeros(9, dtype=np.complex64))
            with pytest.raises(ValueError):
                writer.append_batch(np.zeros((3, 7), dtype=np.complex64))
        with pytest.raises(StoreFormatError):
            TraceWriter(tmp_path / "x.rst", n_bins=8, frame_rate_hz=25.0, dtype=np.float64)

    def test_non_store_file_rejected(self, tmp_path):
        junk = tmp_path / "junk.rst"
        junk.write_bytes(b"definitely not a radar store file" * 4)
        with pytest.raises(StoreFormatError):
            TraceReader(junk)

"""Fixtures for the trace-store battery: small traces and store files."""

from __future__ import annotations

import numpy as np
import pytest

from repro.physio import ParticipantProfile
from repro.sim import Scenario, simulate
from repro.store import write_trace


@pytest.fixture(scope="session")
def short_trace():
    """An 8 s parked session: small enough to round-trip in every test."""
    scenario = Scenario(
        participant=ParticipantProfile("STORE"),
        duration_s=8.0,
        road="parked",
        state="awake",
        allow_posture_shifts=False,
    )
    return simulate(scenario, seed=41)


@pytest.fixture
def short_rst(short_trace, tmp_path):
    """The short trace written to a ``.rst`` file."""
    path = tmp_path / "short.rst"
    write_trace(path, short_trace)
    return path


def synthetic_frames(n_frames: int, n_bins: int, seed: int, dtype=np.complex64):
    """Deterministic complex frames for property tests."""
    rng = np.random.default_rng(seed)
    real = rng.normal(size=(n_frames, n_bins))
    imag = rng.normal(size=(n_frames, n_bins))
    return (real + 1j * imag).astype(dtype)

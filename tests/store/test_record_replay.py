"""Record → replay equivalence: the detector cannot tell disk from live."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import BlinkRadar
from repro.eval.runner import replay_session, run_session
from repro.hardware import FrameStream, SpiBus, UwbRadarDevice, XepDriver
from repro.physio import ParticipantProfile
from repro.sim import Scenario, simulate
from repro.store import Recorder, ReplaySource, TraceReader, write_trace


def session_scenario():
    return Scenario(
        participant=ParticipantProfile("REPLAY"),
        duration_s=8.0,
        road="parked",
        state="awake",
        allow_posture_shifts=False,
    )


class TestRecorder:
    def test_tee_passes_frames_through_unchanged(self, short_trace, tmp_path):
        path = tmp_path / "tee.rst"
        with Recorder(
            path,
            n_bins=short_trace.n_bins,
            frame_rate_hz=short_trace.frame_rate_hz,
            dtype=short_trace.frames.dtype,
        ) as recorder:
            seen = [
                frame
                for _stamp, frame in recorder.tee(
                    zip(short_trace.timestamps_s, short_trace.frames)
                )
            ]
        assert np.array_equal(np.stack(seen), short_trace.frames)
        with TraceReader(path) as reader:
            assert np.array_equal(reader.frames, short_trace.frames)
            assert np.array_equal(reader.timestamps(), short_trace.timestamps_s)

    def test_consumer_crash_preserves_consumed_frames(self, short_trace, tmp_path):
        # Writes happen before the yield, so every frame the consumer
        # processed is on disk even when the consumer dies mid-stream.
        path = tmp_path / "crash.rst"
        recorder = Recorder(
            path,
            n_bins=short_trace.n_bins,
            frame_rate_hz=short_trace.frame_rate_hz,
            dtype=short_trace.frames.dtype,
            chunk_frames=16,
        )
        consumed = 0
        with pytest.raises(RuntimeError, match="consumer died"):
            for _stamp, _frame in recorder.tee(
                zip(short_trace.timestamps_s, short_trace.frames)
            ):
                consumed += 1
                if consumed == 50:
                    raise RuntimeError("consumer died")
        recorder.close(finalize=False)
        with TraceReader(path, recover=True) as reader:
            assert reader.n_frames >= consumed
            assert np.array_equal(
                reader.frames[:consumed], short_trace.frames[:consumed]
            )

    def test_device_stream_recording_replays_identically(self, tmp_path):
        # The full acceptance loop: emulated chip → SPI driver → live
        # detector, teed to disk; then replay through a fresh detector.
        trace = simulate(session_scenario(), seed=13)
        device = UwbRadarDevice(frame_source=trace.frames)
        driver = XepDriver(SpiBus(device), n_bins=trace.n_bins)
        driver.probe()
        driver.configure()
        driver.start()

        path = tmp_path / "device.rst"
        live = BlinkRadar(frame_rate_hz=25.0)
        stream = FrameStream(driver, device, n_frames=trace.n_frames)
        with Recorder(
            path, n_bins=trace.n_bins, frame_rate_hz=25.0, dtype="complex128"
        ) as recorder:
            for _stamp, frame in recorder.tee(stream):
                live.process_frame(frame)

        replayed = BlinkRadar(frame_rate_hz=25.0)
        with ReplaySource(path) as source:
            for _stamp, frame in source:
                replayed.process_frame(frame)
        assert [e.frame_index for e in replayed.stream_events] == [
            e.frame_index for e in live.stream_events
        ]
        # Bit-exactness of the stored stream, not just event agreement.
        with TraceReader(path) as reader:
            assert reader.header.dtype == np.dtype("<c16")
            first_frames = reader.read(0, 3)
        assert first_frames.dtype == np.complex128


class TestReplaySource:
    def test_array_protocol_matches_frames(self, short_rst, short_trace):
        with ReplaySource(short_rst) as source:
            assert np.array_equal(np.asarray(source), short_trace.frames)
            assert len(source) == short_trace.n_frames

    def test_callable_protocol_and_exhaustion(self, short_rst, short_trace):
        with ReplaySource(short_rst) as source:
            assert np.array_equal(source(0), short_trace.frames[0])
            assert np.array_equal(source(41), short_trace.frames[41])
            with pytest.raises(IndexError):
                source(short_trace.n_frames)

    def test_seek_shifts_every_protocol(self, short_rst, short_trace):
        with ReplaySource(short_rst, start_frame=25) as source:
            assert len(source) == short_trace.n_frames - 25
            assert np.array_equal(source(0), short_trace.frames[25])
            assert np.array_equal(source.frames, short_trace.frames[25:])
            source.seek(40)
            assert np.array_equal(source(0), short_trace.frames[40])

    def test_seek_time(self, short_rst, short_trace):
        with ReplaySource(short_rst) as source:
            source.seek_time(2.0)
            expected = int(np.searchsorted(short_trace.timestamps_s, 2.0))
            assert source.start_frame == expected

    def test_paced_iteration_respects_rate(self, short_rst):
        import time

        with ReplaySource(short_rst, pace=True, speed=2000.0) as source:
            start = time.monotonic()
            n = sum(1 for _ in source)
            elapsed_s = time.monotonic() - start
        # 8 s of recording at 2000x must take at least ~4 ms, and the
        # unpaced path (below) shows the floor is pacing, not I/O.
        assert n > 0 and elapsed_s >= 8.0 / 2000.0 * 0.5

    def test_drives_emulated_device(self, short_rst, short_trace):
        with ReplaySource(short_rst) as source:
            device = UwbRadarDevice(frame_source=source)
            driver = XepDriver(SpiBus(device), n_bins=short_trace.n_bins)
            driver.probe()
            driver.configure()
            driver.start()
            stream = FrameStream(driver, device)
            delivered = sum(1 for _ in stream)
        assert delivered == short_trace.n_frames

    def test_drives_fleet_session(self, short_rst, short_trace):
        from repro.fleet.session import DetectorSession

        with ReplaySource(short_rst) as source:
            session = DetectorSession("replay0", source)
            session.start()
            session.run_serial()
            session.close()
        assert session.frames_processed == short_trace.n_frames

    def test_drives_fleet_scheduler(self, short_rst, short_trace):
        # Two sessions replaying the same recording through the full
        # pump/worker scheduler, each from its own independent cursor.
        from repro.fleet.scheduler import FleetScheduler
        from repro.fleet.session import DetectorSession

        with ReplaySource(short_rst) as a, ReplaySource(short_rst) as b:
            sessions = [
                DetectorSession("replay-a", a),
                DetectorSession("replay-b", b),
            ]
            FleetScheduler(sessions, workers=2).run()
        for session in sessions:
            assert session.frames_processed == short_trace.n_frames


class TestReplaySessionEquivalence:
    def test_replay_session_identical_to_run_session(self, tmp_path):
        # The ISSUE acceptance criterion: a ReplaySource feeding
        # eval.run_session's scoring path produces results identical to
        # the in-memory session — scores, events, waveform.
        scenario = session_scenario()
        live = run_session(scenario, seed=21)
        path = tmp_path / "session.rst"
        write_trace(path, live.trace)

        replayed = replay_session(path)
        assert replayed.score == live.score
        assert [e.frame_index for e in replayed.detection.events] == [
            e.frame_index for e in live.detection.events
        ]
        assert np.array_equal(
            replayed.detection.relative_distance,
            live.detection.relative_distance,
            equal_nan=True,
        )
        assert np.array_equal(
            replayed.detection.selected_bins, live.detection.selected_bins
        )
        assert replayed.scenario is None
        assert np.array_equal(replayed.trace.frames, live.trace.frames)

    def test_replay_session_accepts_open_source(self, tmp_path):
        scenario = session_scenario()
        live = run_session(scenario, seed=22)
        path = tmp_path / "session.rst"
        write_trace(path, live.trace)
        with ReplaySource(path) as source:
            replayed = replay_session(source)
        assert replayed.score == live.score

    def test_seed_recovered_from_metadata(self, tmp_path):
        scenario = session_scenario()
        live = run_session(scenario, seed=23)
        live.trace.metadata["seed"] = 23
        path = tmp_path / "session.rst"
        write_trace(path, live.trace)
        assert replay_session(path).seed == 23

"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "-o", "x.npz"])
        assert args.road == "smooth_highway"
        assert args.state == "awake"

    def test_bad_road_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--road", "moon", "-o", "x.npz"])

    def test_sweep_choices(self):
        args = build_parser().parse_args(["sweep", "distance", "--seeds", "1"])
        assert args.which == "distance" and args.seeds == [1]

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.vehicles == 4
        assert args.faults == 0
        assert args.workers == 4
        assert args.queue_depth == 4096
        assert args.fault_at is None


class TestCommands:
    def test_simulate_then_detect(self, tmp_path, capsys):
        out = tmp_path / "drive.npz"
        rc = main([
            "simulate", "--duration", "30", "--seed", "3",
            "--road", "parked", "-o", str(out),
        ])
        assert rc == 0 and out.exists()
        captured = capsys.readouterr().out
        assert "wrote" in captured and "blinks" in captured

        rc = main(["detect", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "accuracy" in captured

    def test_vitals_command(self, tmp_path, capsys):
        out = tmp_path / "drive.npz"
        main(["simulate", "--duration", "30", "--seed", "4", "-o", str(out)])
        capsys.readouterr()
        rc = main(["vitals", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "respiration" in captured and "heart rate" in captured

    def test_fleet_command(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        rc = main([
            "fleet", "--vehicles", "2", "--faults", "1", "--duration", "8",
            "--workers", "2", "--json", str(out),
        ])
        assert rc == 0 and out.exists()
        captured = capsys.readouterr().out
        assert "v00" in captured and "v01" in captured
        assert "restarts" in captured and "latency p95" in captured
        import json

        snap = json.loads(out.read_text())
        assert snap["counters"]["fleet.restarts"] >= 1
        assert snap["counters"]["fleet.frames_processed"] > 0

    def test_fleet_rejects_more_faults_than_vehicles(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--vehicles", "2", "--faults", "3", "--duration", "5"])

    @pytest.mark.slow
    def test_sweep_command(self, capsys):
        rc = main(["sweep", "distance", "--seeds", "1", "--duration", "30"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "0.400" in captured  # the 40 cm row


class TestGenerators:
    def test_corpus_roundtrip(self, tmp_path):
        from repro.datasets.generators import generate_study_corpus, load_manifest
        from repro.datasets.participants import study_participants

        specs = generate_study_corpus(
            tmp_path, seeds=(7,), duration_s=10.0,
            participants=study_participants()[:2],
        )
        assert len(specs) == 4  # 2 participants x 2 states x 1 road x 1 seed
        loaded = load_manifest(tmp_path)
        assert len(loaded) == 4
        spec, trace = loaded[0]
        assert trace.state == spec.state
        assert trace.duration_s == pytest.approx(10.0)

    def test_cache_reuse(self, tmp_path):
        from repro.datasets.generators import generate_study_corpus
        from repro.datasets.participants import study_participants

        participants = study_participants()[:1]
        generate_study_corpus(tmp_path, seeds=(7,), duration_s=5.0,
                              participants=participants)
        first = {p.name: p.stat().st_mtime_ns for p in tmp_path.glob("*.npz")}
        generate_study_corpus(tmp_path, seeds=(7,), duration_s=5.0,
                              participants=participants)
        second = {p.name: p.stat().st_mtime_ns for p in tmp_path.glob("*.npz")}
        assert first == second  # untouched on the second call

    def test_missing_manifest(self, tmp_path):
        from repro.datasets.generators import load_manifest

        with pytest.raises(FileNotFoundError):
            load_manifest(tmp_path)


class TestCsvExport:
    @pytest.mark.slow
    def test_sweep_with_csv(self, tmp_path, capsys):
        out = tmp_path / "series.csv"
        rc = main(["sweep", "glasses", "--seeds", "1", "--duration", "30",
                   "--csv", str(out)])
        assert rc == 0 and out.exists()
        from repro.eval.export import load_series

        series = load_series(out)
        assert set(series) == {"none", "myopia", "sunglasses"}
